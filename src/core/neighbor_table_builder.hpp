// Batched construction of the neighbor table T on the (simulated) GPU —
// the heart of HYBRID-DBSCAN (paper §V and §VI).
//
// Per epsilon:
//   1. upload the grid index (D, G, A, S) to the device;
//   2. run the count kernel on a 1% sample to estimate the result size;
//   3. plan n_b and b_b via the batching equation (Eq. 1);
//   4. execute the batches round-robin across three CUDA-style streams.
//      Streams overlap kernel execution, transfers and host-side table
//      construction, exactly as described in §VI.
//
// Two batch pipelines (TableBuildMode):
//   * kCsrTwoPass (default) — count kernel writes per-point neighbor
//     counts, an exclusive scan turns them into exact CSR offsets, the
//     fill kernel writes neighbor ids straight into their slots. No
//     device sort, no atomics in the fill pass, and only bare PointId
//     values + per-point offsets cross PCIe (about half the bytes).
//   * kPairSort (legacy, paper Alg. 4) — kernel appends (key, value)
//     pairs through the atomic cursor (bulk-reserved in stages), on-device
//     sort_by_key groups keys, full pairs go D2H.
// Each (device, stream) context appends into its own private NeighborTable
// shard; shards are merged once after all streams synchronize, so no host
// mutex serializes the per-batch appends.
//
// Robustness: should a batch still exceed its buffer (adversarial skew
// beyond what alpha covers), the batch is recursively split in two —
// batch (l, n_b) becomes (l, 2 n_b) and (l + n_b, 2 n_b), which partitions
// the same point set — instead of crashing or silently dropping pairs. In
// CSR mode the exact size is known after the (cheap) count pass, so a
// split wastes no fill-kernel work and the legacy mid-kernel overflow is
// unreachable.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_planner.hpp"
#include "core/estimator.hpp"
#include "core/failure.hpp"
#include "cudasim/device.hpp"
#include "dbscan/batch_sink.hpp"
#include "dbscan/neighbor_table.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {

struct BuildReport {
  BatchPlan plan;
  ResultSizeEstimate estimate;
  std::uint32_t batches_run = 0;       ///< kernel invocations incl. splits
  std::uint32_t overflow_splits = 0;   ///< batches that had to be split
  std::uint64_t total_pairs = 0;       ///< |R| over all batches
  std::uint64_t max_batch_pairs = 0;
  double estimate_seconds = 0.0;
  double table_seconds = 0.0;          ///< total wall time of build()
  double kernel_modeled_seconds = 0.0; ///< summed modeled GPU kernel time
  double sort_modeled_seconds = 0.0;   ///< modeled device sort (pair mode)
  double scan_modeled_seconds = 0.0;   ///< modeled device scan (CSR mode)
  std::uint64_t atomic_ops = 0;        ///< global atomics across all kernels
  std::uint64_t d2h_bytes = 0;         ///< result bytes shipped to the host
  std::uint64_t kernel_flops = 0;      ///< distance-test FLOPs (batch kernels)
  std::uint64_t kernel_global_bytes = 0;  ///< global-memory traffic of same
  double expand_seconds = 0.0;  ///< host transpose restoring back rows (kHalf)

  // --- streaming delivery (BatchSink) ---
  bool streamed = false;           ///< a sink consumed batches in-flight
  bool table_materialized = true;  ///< false: labels-only build, T skipped
  /// True when the report came from the fused no-table path
  /// (core/fused_clustering): degrees and both-core unions happened inside
  /// the traversal kernel, so there are no CSR passes, no value transfers
  /// and no sink hop — d2h_bytes counts only the parked-edge traffic.
  bool fused = false;
  std::uint64_t sink_batches = 0;        ///< exactly-once CSR row deliveries
  std::uint64_t sink_count_batches = 0;  ///< pass-1 degree deliveries
  /// Host CPU spent inside sink callbacks across all stream threads — the
  /// clustering work that overlapped the device build instead of running
  /// after it. Not part of modeled_table_seconds: on the reference host the
  /// consumer drains completed staging buffers on its own cores.
  double sink_consume_seconds = 0.0;

  bool used_shared_kernel = false;
  TableBuildMode build_mode = TableBuildMode::kCsrTwoPass;
  ScanMode scan_mode = ScanMode::kHalf;  ///< pair-evaluation mode that ran
  /// Spatial index the traversal kernels ran against (grid stencil vs
  /// packed-BVH stack traversal). Affects the kHalf pair-ownership rule;
  /// see IndexBackend.
  IndexBackend index_backend = IndexBackend::kGrid;

  /// Modeled wall time of the whole T construction on the reference
  /// hardware (K20c + PCIe 2.0): index upload, estimation kernel, pinned
  /// allocation, then per-stream (kernel + sort + D2H) timelines overlapped
  /// across streams while the host-side appends into B serialize. This is
  /// the "GPU time" the figures report — the simulator executes device
  /// code on the host CPU, so its raw wall time is not GPU time (DESIGN.md).
  double modeled_table_seconds = 0.0;

  // --- degradation accounting (ResiliencePolicy) ---
  std::uint32_t transient_retries = 0;    ///< TransientKernelFault retries
  std::uint32_t alloc_retries = 0;        ///< OOM-driven shrink retries
  std::uint32_t devices_lost = 0;         ///< devices dropped mid-build
  std::uint32_t failover_batches = 0;     ///< batches requeued to survivors
  std::uint32_t host_fallback_batches = 0;///< batches finished on the host
  bool used_host_fallback = false;        ///< any host-side completion

  // --- sharded build accounting (core/sharded_build.hpp); zero unless the
  // --- report came from build_sharded ---
  std::uint32_t shards = 0;               ///< slab shards actually built
  std::uint32_t shard_repartitions = 0;   ///< dead-shard re-partition rounds
  std::uint64_t halo_ghost_points = 0;    ///< summed eps-halo residents
  std::uint64_t cross_shard_pairs = 0;    ///< pairs spanning two owners
  /// Decomposition of modeled_table_seconds: the serial host phases
  /// (index upload, estimation, pinned allocation, the post-build merge,
  /// the final half-table expansion — plus partition planning and host
  /// fallback for sharded builds) versus the overlapped per-stream /
  /// per-round device timelines (charged at the slowest one). Their sum
  /// equals modeled_table_seconds; the fixed share is the Amdahl term
  /// that bounds multi-device scaling.
  double shard_fixed_seconds = 0.0;
  double shard_stream_seconds = 0.0;

  /// Structured cause when build() threw (kNone on success). Filled by the
  /// classifying wrapper around build_impl, so even callers that swallow
  /// the exception (pipeline variants, chaos CLI, the service) see why the
  /// ladder ran out of rungs.
  FailureReason failure = FailureReason::kNone;

  /// True when any rung of the degradation ladder fired.
  [[nodiscard]] bool degraded() const noexcept {
    return transient_retries != 0 || alloc_retries != 0 ||
           devices_lost != 0 || failover_batches != 0 || used_host_fallback;
  }
};

class NeighborTableBuilder {
 public:
  explicit NeighborTableBuilder(cudasim::Device& device,
                                BatchPolicy policy = {})
      : devices_{&device}, policy_(policy) {}

  /// Multi-device construction (the direction of Mr. Scan, the paper's
  /// citation [7]: one GPU per node over a replicated index): the index is
  /// uploaded to every device and the batches are interleaved across
  /// num_devices x num_streams contexts. Devices must outlive the builder.
  NeighborTableBuilder(std::vector<cudasim::Device*> devices,
                       BatchPolicy policy = {});

  /// Builds T for `index` (which fixes the point ordering) and `eps`.
  /// Thread-safe for concurrent calls with distinct indexes (each call
  /// creates its own streams and buffers).
  NeighborTable build(const GridIndex& index, float eps,
                      BuildReport* report = nullptr) {
    return build(index, eps, report, /*sink=*/nullptr,
                 /*materialize_table=*/true);
  }

  /// Streaming build: every batch's pass-1 counts and CSR rows are handed
  /// to `sink` the moment they land (see dbscan/batch_sink.hpp for the
  /// exactly-once contract under the degradation ladder). Requires
  /// TableBuildMode::kCsrTwoPass; a non-null sink disables the
  /// single-batch shared-kernel fast path. With `materialize_table` false
  /// the shard appends, final merge and half-table expansion are all
  /// skipped and the returned table is empty — labels-only callers save
  /// the transpose and the host table memory entirely.
  NeighborTable build(const GridIndex& index, float eps, BuildReport* report,
                      BatchSink* sink, bool materialize_table);

  [[nodiscard]] const BatchPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] std::size_t num_devices() const noexcept {
    return devices_.size();
  }

 private:
  /// The actual build; the public build() wraps it to stamp
  /// report->failure with the classified cause when it throws.
  NeighborTable build_impl(const GridIndex& index, float eps,
                           BuildReport* report, BatchSink* sink,
                           bool materialize_table);

  std::vector<cudasim::Device*> devices_;
  BatchPolicy policy_;
};

}  // namespace hdbscan
