// Cell-graph DBSCAN (ClusterQuality::kCellGraph): re-bin the data into
// cells of side eps/sqrt(d) — small enough that any two points sharing a
// cell are within eps of each other — and exploit two consequences:
//
//   * a cell holding >= minpts points makes every resident a core point
//     for free (its same-cell degree alone clears the threshold), and one
//     union chains the whole cell into a single component: O(1) unions
//     per dense cell instead of O(pairs);
//   * only points in *sparse* cells (and the boundaries between cells)
//     ever need distance tests, so the distance work collapses from
//     O(neighbor pairs) to O(cells + boundary pairs) on clustered data.
//
// Dense-dense cell adjacency resolves with an early-exit bichromatic
// "any pair within eps?" probe; sparse points compute exact degrees
// against the 5^d-cell stencil (cells farther than eps are pruned by
// min-distance before any point is read). Core status and core-core
// connectivity are therefore *exact*; only border assignment — which is
// visit-order dependent in DBSCAN's own definition — uses a deterministic
// smallest-core-id rule, so labels are stable across runs.
//
// The report carries a modeled execution time on the reference device
// (the same DeviceConfig cost model the traversal kernels use: global
// bytes vs FLOPs roofline + serialized atomics per union), which is what
// the quality-frontier bench compares against the exact pipelines.
#pragma once

#include <cstdint>
#include <span>

#include "cudasim/config.hpp"
#include "dbscan/cluster_result.hpp"

namespace hdbscan {

struct CellGraphReport {
  std::uint64_t num_cells = 0;        ///< occupied eps/sqrt(d) cells
  std::uint64_t dense_cells = 0;      ///< cells with >= minpts residents
  std::uint64_t dense_points = 0;     ///< points made core wholesale
  std::uint64_t distance_tests = 0;   ///< boundary + sparse-degree tests
  std::uint64_t unions = 0;           ///< union-find unites performed
  double modeled_seconds = 0.0;       ///< reference-device execution model
  double cpu_seconds = 0.0;           ///< measured host wall time
};

/// 2-D cell-graph DBSCAN. Labels are in input order (no index reordering
/// applies — the binning is internal). `config` prices the modeled time.
ClusterResult cell_graph_dbscan(std::span<const Point2> points, float eps,
                                int minpts,
                                const cudasim::DeviceConfig& config,
                                CellGraphReport* report = nullptr);

/// 3-D variant: side eps/sqrt(3), 5x5x5 stencil; otherwise identical.
ClusterResult cell_graph_dbscan3(std::span<const Point3> points, float eps,
                                 int minpts,
                                 const cudasim::DeviceConfig& config,
                                 CellGraphReport* report = nullptr);

}  // namespace hdbscan
