#include "core/failure.hpp"

#include "common/cancel.hpp"
#include "cudasim/error.hpp"

namespace hdbscan {

const char* failure_reason_name(FailureReason reason) noexcept {
  switch (reason) {
    case FailureReason::kNone:
      return "none";
    case FailureReason::kTransientExhausted:
      return "transient_exhausted";
    case FailureReason::kOutOfMemory:
      return "out_of_memory";
    case FailureReason::kDeviceLost:
      return "device_lost";
    case FailureReason::kCancelled:
      return "cancelled";
    case FailureReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case FailureReason::kOther:
      return "other";
  }
  return "other";
}

FailureReason classify_current_exception() noexcept {
  try {
    throw;
  } catch (const OperationCancelled& e) {
    return e.reason() == CancelReason::kDeadline
               ? FailureReason::kDeadlineExceeded
               : FailureReason::kCancelled;
  } catch (const cudasim::TransientKernelFault&) {
    return FailureReason::kTransientExhausted;
  } catch (const cudasim::DeviceOutOfMemory&) {
    return FailureReason::kOutOfMemory;
  } catch (const cudasim::DeviceLost&) {
    return FailureReason::kDeviceLost;
  } catch (...) {
    return FailureReason::kOther;
  }
}

}  // namespace hdbscan
