// Bridges from the repo's end-of-run aggregate structs (cudasim's
// DeviceMetrics, the builder's BuildReport) into the obs metrics
// registry. The structs stay the public API; these functions mirror
// their fields into named registry metrics so `--metrics-out` and the
// profile subcommand expose one uniform surface.
#pragma once

#include <cstdint>

#include "core/neighbor_table_builder.hpp"
#include "cudasim/metrics.hpp"

namespace hdbscan {

/// Publishes one device's metrics under labels "device=<id>".
void publish_device_metrics(std::uint32_t device_id,
                            const cudasim::DeviceMetrics& m);

/// Publishes a build report's counters and timings (no labels; callers
/// running several builds get cumulative counters, which is the registry
/// contract).
void publish_build_report(const BuildReport& report);

}  // namespace hdbscan
