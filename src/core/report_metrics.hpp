// Bridges from the repo's end-of-run aggregate structs (cudasim's
// DeviceMetrics, the builder's BuildReport) into the obs metrics
// registry. The structs stay the public API; these functions mirror
// their fields into named registry metrics so `--metrics-out` and the
// profile subcommand expose one uniform surface.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/neighbor_table_builder.hpp"
#include "cudasim/metrics.hpp"

namespace hdbscan {

/// Publishes one device's metrics under labels "device=<id>".
void publish_device_metrics(std::uint32_t device_id,
                            const cudasim::DeviceMetrics& m);

/// Publishes the element-wise sum of several devices' metrics under labels
/// "device=fleet" — the multi-device roll-up that per-device gauges alone
/// can't provide without the reader re-summing label sets.
void publish_fleet_metrics(std::span<const cudasim::DeviceMetrics> devices);

/// Publishes a build report's counters and timings. `labels` scopes every
/// series ("key=value,key=value"; empty = the unlabeled fleet-level
/// series). Concurrent builders must use distinct labels — the sharded
/// orchestrator tags each shard "shard=<i>" — or their last-value gauges
/// silently overwrite each other. Counters stay cumulative per label set,
/// which is the registry contract.
void publish_build_report(const BuildReport& report,
                          const std::string& labels = std::string());

}  // namespace hdbscan
