// HYBRID-DBSCAN (paper Algorithm 4): grid index construction, GPU neighbor
// table construction with batching, and host-side DBSCAN over T.
#pragma once

#include <span>

#include "core/batch_planner.hpp"
#include "core/neighbor_table_builder.hpp"
#include "cudasim/device.hpp"
#include "dbscan/cluster_result.hpp"
#include "dbscan/dbscan.hpp"

namespace hdbscan {

/// Per-phase wall times of one HYBRID-DBSCAN run. `gpu_table_seconds` is
/// the "GPU time" of the paper's Figure 3: constructing T, part of which
/// (the append into B) occurs on the host.
struct HybridTimings {
  double index_seconds = 0.0;
  double gpu_table_seconds = 0.0;  ///< simulator wall time of the T build
  double dbscan_seconds = 0.0;
  double total_seconds = 0.0;      ///< simulator wall total
  /// Modeled T-construction time on the reference hardware (K20c) — the
  /// simulator executes kernels on the host CPU, so gpu_table_seconds is
  /// CPU time, not GPU time. See BuildReport::modeled_table_seconds.
  double modeled_gpu_table_seconds = 0.0;
  /// index build + modeled T construction + host DBSCAN: the response
  /// time a machine with the paper's GPU would see.
  double modeled_total_seconds = 0.0;
  BuildReport build_report;
};

/// Runs HYBRID-DBSCAN for a single (eps, minpts). The returned labels are
/// in the order of `points` (the grid index's internal reordering is
/// unmapped before returning).
ClusterResult hybrid_dbscan(cudasim::Device& device,
                            std::span<const Point2> points, float eps,
                            int minpts, HybridTimings* timings = nullptr,
                            const BatchPolicy& policy = {});

/// Remaps labels from the grid index's point order back to input order.
ClusterResult unmap_labels(const ClusterResult& indexed,
                           std::span<const PointId> original_ids);

}  // namespace hdbscan
