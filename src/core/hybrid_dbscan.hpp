// HYBRID-DBSCAN (paper Algorithm 4): grid index construction, GPU neighbor
// table construction with batching, and host-side DBSCAN over T.
#pragma once

#include <span>
#include <vector>

#include "core/batch_planner.hpp"
#include "core/neighbor_table_builder.hpp"
#include "core/sharded_build.hpp"
#include "cudasim/device.hpp"
#include "dbscan/cluster_result.hpp"
#include "dbscan/dbscan.hpp"
#include "dbscan/streaming_dbscan.hpp"

namespace hdbscan {

/// Per-phase wall times of one HYBRID-DBSCAN run. `gpu_table_seconds` is
/// the "GPU time" of the paper's Figure 3: constructing T, part of which
/// (the append into B) occurs on the host.
struct HybridTimings {
  double index_seconds = 0.0;
  double gpu_table_seconds = 0.0;  ///< simulator wall time of the T build
  double dbscan_seconds = 0.0;
  double total_seconds = 0.0;      ///< simulator wall total
  /// Modeled T-construction time on the reference hardware (K20c) — the
  /// simulator executes kernels on the host CPU, so gpu_table_seconds is
  /// CPU time, not GPU time. See BuildReport::modeled_table_seconds.
  double modeled_gpu_table_seconds = 0.0;
  /// index build + modeled T construction + host DBSCAN: the response
  /// time a machine with the paper's GPU would see. In streaming mode the
  /// union work overlaps the build on the reference host, so this is
  /// index + max(modeled build, host union) + the resolution tail.
  double modeled_total_seconds = 0.0;
  BuildReport build_report;

  // --- streaming mode (ClusterMode::kStreaming / kFused) ---
  bool fused = false;  ///< the fused no-table traversal produced the labels
  bool streamed = false;
  double consume_seconds = 0.0;   ///< union work hidden under the build
  double finalize_seconds = 0.0;  ///< post-build resolution tail
  double overlap_fraction = 0.0;  ///< consume / (consume + finalize)
  double streamed_edge_fraction = 0.0;  ///< edges settled mid-build
  std::size_t peak_consumer_bytes = 0;  ///< replaces the table footprint
};

/// Runs HYBRID-DBSCAN for a single (eps, minpts). The returned labels are
/// in the order of `points` (the grid index's internal reordering is
/// unmapped before returning). ClusterMode::kStreaming clusters the CSR
/// batches as the GPU produces them and never materializes T (it falls
/// back to the batch path under TableBuildMode::kPairSort, which has no
/// streaming delivery). ClusterMode::kFused goes further: the traversal
/// kernel itself counts degrees and unions both-core edges
/// (core/fused_clustering), so even the CSR passes and value transfers
/// disappear — combine with policy.index_backend = IndexBackend::kBvh for
/// the tree-traversal variant.
ClusterResult hybrid_dbscan(cudasim::Device& device,
                            std::span<const Point2> points, float eps,
                            int minpts, HybridTimings* timings = nullptr,
                            const BatchPolicy& policy = {},
                            ClusterMode mode = ClusterMode::kBatchTable);

/// Multi-device HYBRID-DBSCAN: T is built sharded across `devices` (one
/// grid slab plus its eps-halo per shard; see core/sharded_build.hpp) and
/// the labels are bit-identical to the single-device run. In streaming
/// mode the cross-shard core-core unions flow through the same
/// StreamingDbscan consumer the single-device path uses, fed global keys
/// by the shard translation layer.
ClusterResult hybrid_dbscan(const std::vector<cudasim::Device*>& devices,
                            std::span<const Point2> points, float eps,
                            int minpts, HybridTimings* timings = nullptr,
                            const ShardedBuildOptions& options = {},
                            ClusterMode mode = ClusterMode::kBatchTable);

/// Remaps labels from the grid index's point order back to input order.
ClusterResult unmap_labels(const ClusterResult& indexed,
                           std::span<const PointId> original_ids);

}  // namespace hdbscan
