// Fused no-table clustering (ClusterMode::kFused) — the FDBSCAN-style
// fast path: one traversal launch per batch computes degrees *and* unions
// both-core edges straight into the StreamingDbscan consumer's union-find.
// The neighbor table T is never allocated, on either side of the bus:
// the CSR count/fill passes, the exclusive scan, the offset and value
// transfers and the delivery hop all disappear. Only the edges a kernel
// thread could not decide yet (an endpoint still below minpts at test
// time) cross the kernel boundary, and the finalize() tail settles them
// exactly like the streaming mode's deferred buffer.
//
// Correctness rests on the same two facts the streaming consumer uses:
// core status is monotone (degrees only grow), and disjoint-set DBSCAN is
// order-independent over core-core edges. A kernel-side union is therefore
// final, and the labels are bit-identical to batch DBSCAN over the full
// table.
//
// The degradation ladder matches the table builder's: transient faults
// retry the launch (injected faults fire before any block runs, so a
// faulted launch mutated nothing and the retry is exactly-once), a lost
// device's batches fail over to the survivors, and when no device remains
// the unfinished batches complete on the host — through the packed STR
// R-tree under the tree backends' id-ownership rule, or the grid's forward
// stencil under IndexBackend::kGrid, so the pair cover never mixes rules.
#pragma once

#include <vector>

#include "core/batch_planner.hpp"
#include "core/neighbor_table_builder.hpp"
#include "cudasim/device.hpp"
#include "dbscan/streaming_dbscan.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {

/// Runs the fused traversal over `index` (whole-index builds only; the
/// grid index fixes the id order exactly as for the table pipelines) and
/// mutates `consumer`'s degrees and union-find in place. The caller owns
/// finalize(): labels come from consumer.finalize() after this returns.
/// Honors policy.index_backend (grid stencil vs packed-BVH traversal),
/// policy.scan_mode (kHalf tests each pair once), the resilience ladder,
/// cancellation and metrics labels; build_mode, buffer and estimation
/// fields are ignored — there is nothing to size or estimate.
BuildReport fused_cluster(const std::vector<cudasim::Device*>& devices,
                          const GridIndex& index, float eps,
                          StreamingDbscan& consumer,
                          const BatchPolicy& policy = {});

/// Single-device convenience overload.
BuildReport fused_cluster(cudasim::Device& device, const GridIndex& index,
                          float eps, StreamingDbscan& consumer,
                          const BatchPolicy& policy = {});

}  // namespace hdbscan
