// Multi-device sharded construction of the neighbor table T.
//
// Where NeighborTableBuilder's multi-device mode replicates the whole
// index on every device and stripes *batches* across them, the sharded
// build partitions the *data*: plan_shards cuts the grid into k row slabs
// (core/shard_planner.hpp), each shard uploads only its slab plus the
// eps-halo to one device, runs the ordinary single-device batch pipeline
// over its owned points, and the shard tables are translated into the
// global id space and merged through NeighborTable::absorb_shard. Each
// device therefore holds ~1/k of the index and does ~1/k of the distance
// tests — the scaling regime of a GPU-per-node deployment where the index
// itself no longer fits (or no longer uploads cheaply) on one device.
//
// Exactly-once cross-shard edges: ownership is row-homogeneous and the
// shard-local point order is a monotone relabeling of the global order, so
// under ScanMode::kHalf a cross pair (a, b) is forward in exactly one
// owner's rows — no dedup structure is needed on the fault-free path. The
// per-key dedup ledger below exists only for the resilience ladder: when a
// device dies mid-build its shard is re-partitioned onto the survivors,
// and keys whose counts/rows already reached the caller's sink must not be
// delivered again.
//
// Half-scan expansion is deferred: shard builds run with
// BatchPolicy::expand_half = false (a shard-local expansion would write
// ghost-key rows that collide at the merge) and the orchestrator expands
// the merged forward table once, globally — exactly the single-device
// schedule, so the final table and any labels derived from it are
// bit-identical to a one-device build.
#pragma once

#include <vector>

#include "core/neighbor_table_builder.hpp"
#include "core/shard_planner.hpp"
#include "cudasim/device.hpp"
#include "dbscan/batch_sink.hpp"
#include "dbscan/neighbor_table.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {

struct ShardedBuildOptions {
  /// Requested shard count k. 0 = one shard per device. Values above the
  /// device count queue multiple shards per device (correct, but the
  /// modeled timeline serializes them); the planner additionally clamps to
  /// the grid's row count and drops slabs that own no points.
  unsigned num_shards = 0;
  /// Per-shard batch policy template. The orchestrator overrides
  /// expand_half (always deferred), use_shared_kernel (the shared kernel's
  /// device-side symmetry restoration would emit ghost rows),
  /// metrics_labels (each shard publishes under "shard=<uid>"), and the
  /// failover/host_fallback rungs (device loss is handled here, by
  /// re-partitioning; resilience.host_fallback still decides whether a
  /// fully dead fleet finishes on the host or throws DeviceLost).
  BatchPolicy policy;
  /// Reusable partition. The plan for a given (index, eps-geometry) is
  /// deterministic, so callers building the same index repeatedly — an
  /// eps-reuse sweep, repeated label streams, benchmark trials — compute
  /// it once with plan_shards and point here; `num_shards` is then
  /// ignored and the plan's shards are built (the orchestrator works on
  /// copies; the plan stays reusable). Null means plan internally, with
  /// ShardPlan::critical_seconds charged to the modeled serial phase the
  /// same way a one-off build pays it. Like the grid index itself, a
  /// *reused* plan is setup, not build work, so it is not re-charged per
  /// build. Fault re-partitions always re-plan internally and are always
  /// charged. The plan must have been computed for this exact index.
  const ShardPlan* plan = nullptr;
};

/// Builds T for `index` and `eps` sharded across `devices`. Labels-stream
/// consumers pass `sink` (deliveries carry *global* keys via the explicit
/// key span) and may skip materialization, exactly as with
/// NeighborTableBuilder::build. Throws cudasim::DeviceLost when every
/// device dies and host fallback is off; propagates other hard errors.
NeighborTable build_sharded_neighbor_table(
    const std::vector<cudasim::Device*>& devices, const GridIndex& index,
    float eps, const ShardedBuildOptions& options,
    BuildReport* report = nullptr, BatchSink* sink = nullptr,
    bool materialize_table = true);

}  // namespace hdbscan
