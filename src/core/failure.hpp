// Structured failure taxonomy for builds, pipeline variants, and service
// requests. The degradation ladder used to report failures as free-text
// `what()` strings; callers that need to branch on the cause (chaos CLI,
// the service circuit breaker, bench accounting) get a stable enum instead.
#pragma once

namespace hdbscan {

/// Why a build or pipeline variant failed. kNone means "did not fail".
enum class FailureReason : int {
  kNone = 0,
  kTransientExhausted,  ///< transient faults outlived max_transient_retries
  kOutOfMemory,         ///< allocation failed after every shrink/split rung
  kDeviceLost,          ///< permanent device loss with no surviving fallback
  kCancelled,           ///< a CancelToken was cancelled mid-build
  kDeadlineExceeded,    ///< a CancelToken deadline expired mid-build
  kOther,               ///< anything else (bad input, logic error, ...)
};

/// Stable lower-snake name for logs, CLI output, and metric labels.
const char* failure_reason_name(FailureReason reason) noexcept;

/// Classifies the in-flight exception (callable only inside a catch block).
/// Unwinds the usual suspects in most-specific-first order; never throws.
FailureReason classify_current_exception() noexcept;

}  // namespace hdbscan
