// Multi-clustering pipeline (paper §VII-E).
//
// Clustering a dataset across a set of parameter variants V maximizes
// throughput when the construction of T (GPU-bound) for variant v_{i+1}
// overlaps with DBSCAN (host-bound) for v_i. One producer thread builds
// neighbor tables; a small pool of consumer threads runs the modified
// DBSCAN on them, connected by a bounded queue. The non-pipelined mode
// runs the same variants back-to-back for comparison (Figure 4).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/batch_planner.hpp"
#include "core/failure.hpp"
#include "core/sharded_build.hpp"
#include "cudasim/device.hpp"
#include "dbscan/cluster_result.hpp"
#include "dbscan/streaming_dbscan.hpp"

namespace hdbscan {

/// One DBSCAN parameterization v_i = (eps_i, minpts_i) (paper §III).
struct Variant {
  float eps = 0.0f;
  int minpts = 4;
};

/// How one variant of a multi-variant run ended. A failed variant no
/// longer aborts its siblings: the pipeline records the failure here and
/// keeps going, rethrowing the first error only when *every* variant
/// failed (so single-variant callers still see their exception).
struct VariantOutcome {
  bool ok = true;
  /// The variant's table was built host-side because the device(s) were
  /// already lost when its turn came.
  bool host_fallback = false;
  std::string error;  ///< what() of the failure; empty when ok
  /// Structured cause of the failure (kNone when ok) — what callers
  /// branch on instead of parsing `error`.
  FailureReason failure = FailureReason::kNone;
};

struct VariantTiming {
  Variant variant;
  double table_seconds = 0.0;   ///< index + GPU neighbor-table wall time
  double dbscan_seconds = 0.0;  ///< host clustering time
  /// Index build + modeled T construction (reference-hardware GPU model).
  double modeled_table_seconds = 0.0;
  std::int32_t num_clusters = 0;
  std::size_t noise_count = 0;
  /// Streaming mode: this variant's unions ran during its own build.
  bool streamed = false;
  double overlap_fraction = 0.0;  ///< consume / (consume + finalize)
  VariantOutcome outcome;
};

struct PipelineOptions {
  bool pipelined = true;
  unsigned num_consumers = 3;    ///< paper: "up to 3 threads consume T"
  unsigned queue_capacity = 3;   ///< bounds in-flight *table count*
  /// Additionally bounds the in-flight payload *bytes* (0 = legacy
  /// count-only). A large-eps sweep's multi-GB tables stop admitting once
  /// the budget is reached — but an empty queue always admits one item,
  /// whatever its size, so an over-budget single table can never
  /// deadlock the producer.
  std::uint64_t queue_bytes_budget = 0;
  BatchPolicy policy;
  bool keep_results = false;     ///< retain labels (costs memory)
  /// kStreaming: each variant's core-core unions run on the builder's
  /// stream threads during its own build and T is never materialized —
  /// intra-variant overlap on top of the paper's inter-variant pipeline.
  /// kFused: the traversal kernel itself counts degrees and unions
  /// both-core edges (core/fused_clustering) — not even the CSR passes
  /// run; honors policy.index_backend for grid-vs-BVH traversal.
  ClusterMode cluster_mode = ClusterMode::kBatchTable;
  /// Fleet overload only: shards per variant's table build (0 = one shard
  /// per live device, the sharded orchestrator's default). The
  /// single-device overload ignores it.
  unsigned num_shards = 0;
};

struct PipelineReport {
  double total_seconds = 0.0;
  std::vector<VariantTiming> variants;   ///< in input order
  std::vector<ClusterResult> results;    ///< only when keep_results
};

/// Clusters `points` for every variant. With options.pipelined the
/// producer/consumer overlap is on; otherwise variants run sequentially.
PipelineReport run_multi_clustering(cudasim::Device& device,
                                    std::span<const Point2> points,
                                    std::span<const Variant> variants,
                                    const PipelineOptions& options = {});

/// Fleet overload: each variant's neighbor table is built across all
/// (surviving) devices via the sharded orchestrator — eps-halo row slabs,
/// re-partitioning on device loss, the whole §12 ladder — while the
/// producer/consumer overlap and the bounded queue (count + byte budget,
/// one-item minimum) work exactly as in the single-device pipeline. With
/// one device and num_shards <= 1 this degenerates to the single-device
/// overload.
PipelineReport run_multi_clustering(
    const std::vector<cudasim::Device*>& devices,
    std::span<const Point2> points, std::span<const Variant> variants,
    const PipelineOptions& options = {});

}  // namespace hdbscan
