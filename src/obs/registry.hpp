// Named-metrics registry: counters, gauges, and histograms with labels.
//
// The registry supersedes the ad-hoc end-of-run aggregates (cudasim's
// DeviceMetrics, the builder's BuildReport) as the *export* surface —
// those public structs stay untouched and are mirrored into the registry
// by the publish_* bridges (core/report_metrics.hpp), while new
// instrumentation can register counters directly. Lookup is by
// (name, labels) under one mutex; call sites that care about cost resolve
// the metric once and keep the reference (metric objects have stable
// addresses for the registry's lifetime). Updates are lock-free atomics.
//
// Exposition: text() is a Prometheus-style text dump for humans;
// json() a flat machine-readable document (schema_version 1) usable by
// the BENCH_*.json tooling and `hdbscan_cli --metrics-out`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hdbscan::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written floating-point metric.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (cumulative-bucket exposition like Prometheus).
class Histogram {
 public:
  /// `bounds` are the inclusive upper bucket bounds, strictly increasing;
  /// one implicit +inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;        ///< upper bounds (without +inf)
    std::vector<std::uint64_t> counts; ///< per-bucket (bounds.size() + 1)
    double sum = 0.0;
    std::uint64_t count = 0;

    /// Quantile estimate with linear interpolation inside the covering
    /// bucket (Prometheus histogram_quantile semantics). q is clamped to
    /// [0, 1]; an empty histogram reports 0; mass in the +inf bucket is
    /// clamped to the last finite bound.
    [[nodiscard]] double quantile(double q) const noexcept;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Convenience: snapshot().quantile(q).
  [[nodiscard]] double quantile(double q) const noexcept;
  void reset() noexcept;

  /// Default bounds for durations in seconds (10 us .. 60 s).
  [[nodiscard]] static std::vector<double> default_seconds_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

class Registry {
 public:
  /// The process-wide registry the instrumented layers publish into.
  static Registry& global();

  /// Finds or creates a metric. `labels` is a comma-separated
  /// "key=value,key=value" string (empty for none). Throws
  /// std::logic_error if the same (name, labels) was registered as a
  /// different kind.
  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  /// `bounds` applies only on first registration (empty = default
  /// seconds bounds).
  Histogram& histogram(std::string_view name, std::string_view labels = {},
                       std::vector<double> bounds = {});

  /// Prometheus-style text exposition, one metric per line, sorted.
  [[nodiscard]] std::string text() const;
  /// Flat JSON document: {"schema_version":1,"metrics":[...]}.
  [[nodiscard]] std::string json() const;

  /// Zeroes every metric, keeping registrations (references stay valid).
  void reset_values();

  [[nodiscard]] std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::string name;
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& find_or_create(Kind kind, std::string_view name,
                         std::string_view labels,
                         std::vector<double>* bounds);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Metric>> metrics_;  ///< key: name{labels}
};

}  // namespace hdbscan::obs
