// Structured span tracing for the simulator and the hybrid pipeline.
//
// The tracer records three kinds of events — spans (RAII scopes), instant
// events, and counter samples — into per-thread ring buffers, so the hot
// path never touches a shared lock: each thread appends under its own
// (uncontended) buffer mutex, and the only global synchronization is a
// one-time registration when a thread first records. When tracing is
// disabled (the default), every TRACE_* site costs one relaxed atomic load
// and a predicted branch; defining HDBSCAN_TRACE_DISABLED compiles the
// sites out entirely.
//
// Every event carries a (pid, tid) track identity mirroring the Chrome /
// Perfetto trace_event model: the host is one "process", each simulated
// device is another, and each stream worker or host worker thread is a
// "thread" row inside its process. Spans additionally carry a *modeled*
// timestamp pair — the simulator's cost-model clock, advanced explicitly
// via modeled_advance() by the cudasim accounting hooks — which the
// exporter emits as a parallel set of processes (pid + kModeledPidOffset),
// so a trace shows both what the simulator's host CPU actually did and
// what the modeled reference GPU would have done.
//
// Exporters live in obs/export.hpp; the metrics registry in
// obs/registry.hpp.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/request_context.hpp"

namespace hdbscan::obs {

/// Track (process) ids of the exported timeline. The host is one Perfetto
/// process; simulated device d is process kDevicePidBase + d; the
/// modeled-time mirror of any process sits at pid + kModeledPidOffset.
inline constexpr std::uint32_t kHostPid = 1;
inline constexpr std::uint32_t kDevicePidBase = 100;
inline constexpr std::uint32_t kModeledPidOffset = 10000;

[[nodiscard]] constexpr std::uint32_t device_pid(
    std::uint32_t device_id) noexcept {
  return kDevicePidBase + device_id;
}

[[nodiscard]] constexpr bool is_device_pid(std::uint32_t pid) noexcept {
  return pid >= kDevicePidBase && pid < kModeledPidOffset;
}

enum class EventType : std::uint8_t { kSpan, kInstant, kCounter };

/// One recorded event. `name` is copied (call sites may format dynamic
/// names); `category` must be a string literal with static storage.
struct TraceEvent {
  char name[48] = {};
  const char* category = "";
  EventType type = EventType::kInstant;
  std::uint32_t pid = kHostPid;
  std::uint32_t tid = 0;
  double ts_us = 0.0;        ///< wall microseconds since the tracer epoch
  double dur_us = 0.0;       ///< spans only
  double model_ts_us = 0.0;  ///< modeled-clock begin (spans)
  double model_dur_us = -1.0;  ///< < 0: no modeled-time mirror
  double value = 0.0;          ///< counters only
  /// Request attribution, stamped from the recording thread's
  /// RequestContext (DESIGN.md §14). 0 = unattributed.
  std::uint64_t request_id = 0;
  /// For "link" instants (and any event recorded under a borrowed-work
  /// scope): the request whose spans did this request's work.
  std::uint64_t link_id = 0;
  char tenant[24] = {};

  [[nodiscard]] double end_us() const noexcept { return ts_us + dur_us; }
};

/// A (pid, tid) row of the timeline plus its display name.
struct TraceTrack {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;
};

class Tracer {
 public:
  /// The process-wide tracer every TRACE_* site records into.
  static Tracer& global();

  /// Discards previously collected events, resets the epoch and every
  /// thread's modeled clock, and starts recording.
  void enable();
  void disable();
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-thread ring capacity in events. Takes effect for buffers that
  /// have not yet allocated their ring (all of them after the next
  /// enable()). The ring keeps the *oldest* events and counts the rest as
  /// dropped — a bounded trace of the run's beginning beats unbounded
  /// memory.
  void set_thread_capacity(std::size_t events);

  /// Names the calling thread's track and assigns it to process `pid`
  /// (fresh tid within that pid). Threads that never call this land on
  /// the host process as "host".
  void set_thread_track(std::uint32_t pid, const char* name);

  /// Appends one event on the calling thread's track. `name` is copied.
  /// The calling thread's RequestContext is stamped onto the event.
  void record(EventType type, const char* category, const char* name,
              double ts_us, double dur_us, double model_ts_us,
              double model_dur_us, double value);

  /// Records a span-link instant: request `from` (tenant `from_tenant`)
  /// was served by work attributed to request `to` (a coalesced leader's
  /// build or the build that populated a cache entry). Exported with
  /// explicit request/link args regardless of the calling thread's scope.
  void record_link(const char* name, std::uint64_t from,
                   const char* from_tenant, std::uint64_t to);

  /// Wall microseconds since the epoch set by the last enable().
  [[nodiscard]] double now_us() const noexcept;

  /// Advances the calling thread's modeled clock (cudasim cost model).
  void modeled_advance(double seconds) noexcept;
  [[nodiscard]] double modeled_now_us() noexcept;

  /// All collected events, sorted by wall begin time.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// Every registered track (including ones with no events yet).
  [[nodiscard]] std::vector<TraceTrack> tracks() const;
  /// Events lost to ring overflow since the last enable().
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  struct ThreadState;

  Tracer() = default;
  ThreadState& thread_state();
  ThreadState* thread_state_if_any() noexcept;

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> epoch_ns_{0};
  std::atomic<std::size_t> capacity_{16384};

  mutable std::mutex mutex_;  ///< guards states_ / next_tid_ (registration)
  std::vector<std::shared_ptr<ThreadState>> states_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> next_tid_;
};

#if defined(HDBSCAN_TRACE_DISABLED)

// Compile-time kill switch: every site becomes a no-op expression and the
// helpers fold to nothing. The Tracer class itself stays available (the
// exporters and CLI still link), it just never receives events.
inline constexpr bool kTraceCompiled = false;

class Span {
 public:
  Span(const char*, const char*, ...) noexcept {}
};

inline void instant(const char*, const char*, ...) noexcept {}
inline void counter(const char*, const char*, double) noexcept {}
inline void link(const char*, std::uint64_t, const char*,
                 std::uint64_t) noexcept {}
inline void set_thread_track(std::uint32_t, const char*) noexcept {}
inline void modeled_advance(double) noexcept {}
[[nodiscard]] inline bool tracing_enabled() noexcept { return false; }

#define TRACE_SPAN(...) ((void)0)
#define TRACE_INSTANT(...) ((void)0)
#define TRACE_COUNTER(...) ((void)0)

#else  // tracing compiled in

inline constexpr bool kTraceCompiled = true;

[[nodiscard]] inline bool tracing_enabled() noexcept {
  return Tracer::global().enabled();
}

/// Advances the calling thread's modeled clock; no-op when disabled.
inline void modeled_advance(double seconds) noexcept {
  Tracer& t = Tracer::global();
  if (t.enabled()) t.modeled_advance(seconds);
}

/// Names the calling thread's timeline row (see Tracer::set_thread_track).
inline void set_thread_track(std::uint32_t pid, const char* name) {
  Tracer::global().set_thread_track(pid, name);
}

/// RAII span scope: captures wall + modeled begin on construction, records
/// one complete-span event on destruction. Near-free when disabled.
class Span {
 public:
  __attribute__((format(printf, 3, 4)))
  Span(const char* category, const char* fmt, ...) noexcept {
    Tracer& t = Tracer::global();
    if (!t.enabled()) return;
    active_ = true;
    category_ = category;
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(name_, sizeof(name_), fmt, args);
    va_end(args);
    model_ts_us_ = t.modeled_now_us();
    ts_us_ = t.now_us();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (!active_) return;
    Tracer& t = Tracer::global();
    const double end = t.now_us();
    const double model_end = t.modeled_now_us();
    const double model_dur = model_end - model_ts_us_;
    t.record(EventType::kSpan, category_, name_, ts_us_, end - ts_us_,
             model_ts_us_, model_dur > 0.0 ? model_dur : -1.0, 0.0);
  }

 private:
  bool active_ = false;
  const char* category_ = "";
  char name_[48] = {};
  double ts_us_ = 0.0;
  double model_ts_us_ = 0.0;
};

/// Records an instant event (a point-in-time marker, e.g. a fault firing).
__attribute__((format(printf, 2, 3)))
inline void instant(const char* category, const char* fmt, ...) noexcept {
  Tracer& t = Tracer::global();
  if (!t.enabled()) return;
  char name[48];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(name, sizeof(name), fmt, args);
  va_end(args);
  t.record(EventType::kInstant, category, name, t.now_us(), 0.0, 0.0, -1.0,
           0.0);
}

/// Records a counter sample (rendered as a track graph in Perfetto).
inline void counter(const char* category, const char* name,
                    double value) noexcept {
  Tracer& t = Tracer::global();
  if (!t.enabled()) return;
  t.record(EventType::kCounter, category, name, t.now_us(), 0.0, 0.0, -1.0,
           value);
}

/// Records a span link (see Tracer::record_link); no-op when disabled.
inline void link(const char* name, std::uint64_t from,
                 const char* from_tenant, std::uint64_t to) noexcept {
  Tracer& t = Tracer::global();
  if (!t.enabled()) return;
  t.record_link(name, from, from_tenant, to);
}

#define HDBSCAN_TRACE_CONCAT_(a, b) a##b
#define HDBSCAN_TRACE_CONCAT(a, b) HDBSCAN_TRACE_CONCAT_(a, b)

/// RAII span for the enclosing scope: TRACE_SPAN("build", "batch %u", b);
#define TRACE_SPAN(category, ...)                              \
  ::hdbscan::obs::Span HDBSCAN_TRACE_CONCAT(hdbscan_trace_span_, \
                                            __LINE__) {        \
    category, __VA_ARGS__                                      \
  }

#define TRACE_INSTANT(category, ...) \
  ::hdbscan::obs::instant(category, __VA_ARGS__)

#define TRACE_COUNTER(category, name, value) \
  ::hdbscan::obs::counter(category, name, value)

#endif  // HDBSCAN_TRACE_DISABLED

}  // namespace hdbscan::obs
