// Exporters and analysis helpers for the tracer and the metrics registry.
//
// chrome_trace_json() serializes a snapshot into the Chrome / Perfetto
// `trace_event` JSON format (open in https://ui.perfetto.dev or
// chrome://tracing). Spans are emitted as complete ("X") events so a
// partially-overflowed ring never produces unmatched begin/end pairs;
// fault firings and other markers are instants ("i"); counter samples are
// "C" events. Track naming uses process_name / thread_name metadata:
// pid 1 is the host, pid 100+d is simulated device d, and every process
// with modeled-time spans gets a mirror process at pid + 10000 showing
// the cost model's view of the same work.
//
// validate_trace_file() re-parses an emitted file with a minimal JSON
// reader — enough structure checking for the trace_smoke CTest target
// without a JSON dependency. profile_trace() powers `hdbscan_cli
// profile`: per-category busy time from interval unions plus the
// wall-clock overlap ratio.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hdbscan::obs {

/// Serializes events + track names as a trace_event JSON document.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceEvent>& events,
    const std::vector<TraceTrack>& tracks);

/// Snapshots the global tracer and writes the JSON to `path`.
/// Returns false (and sets `error` if given) on I/O failure.
bool write_chrome_trace(const std::string& path, std::string* error = nullptr);

/// Writes Registry::global().json() to `path`.
bool write_metrics_json(const std::string& path, std::string* error = nullptr);

/// What trace_smoke asserts about an emitted trace file.
struct TraceValidation {
  bool ok = false;
  std::string error;
  std::size_t events = 0;          ///< trace events excluding metadata
  std::size_t complete_spans = 0;  ///< "X" events
  std::size_t instants = 0;        ///< "i" events
  std::size_t counters = 0;        ///< "C" events
  std::vector<std::uint32_t> device_pids;  ///< distinct device processes
  /// (pid, tid) pairs on device processes that carry >= 1 span.
  std::size_t device_span_tracks = 0;
  std::size_t modeled_span_events = 0;  ///< spans on modeled mirror pids
  std::size_t host_spans = 0;           ///< spans on the host process
  bool has_fault_instant = false;       ///< any instant in category "fault"
  /// Request attribution (DESIGN.md §14): spans carrying / missing a
  /// "request" arg, span-link instants (category "link"), and the number
  /// of distinct request ids seen across all events.
  std::size_t spans_with_request = 0;
  std::size_t spans_without_request = 0;
  std::size_t link_events = 0;
  std::size_t distinct_request_ids = 0;
};

/// Parses `path` as trace_event JSON and checks structural invariants.
[[nodiscard]] TraceValidation validate_trace_file(const std::string& path);

/// Re-loads an emitted trace_event JSON file as TraceEvents so the
/// critical-path analyzer (obs/analyzer.hpp) can run on saved traces.
/// Spans on modeled mirror pids come back as spans on those pids with
/// model_dur_us unset — analyze_request_trace() treats them as
/// modeled-only time, matching the exporter's wall/modeled split.
/// Category strings are interned in a process-lifetime pool (TraceEvent
/// stores `const char*` with static storage).
bool read_trace_file(const std::string& path, std::vector<TraceEvent>* events,
                     std::string* error = nullptr);

/// Per-category timing rollup of one snapshot (wall clock).
struct PhaseStat {
  std::string category;
  std::size_t spans = 0;
  double busy_seconds = 0.0;      ///< union of the category's intervals
  double modeled_seconds = 0.0;   ///< sum of modeled durations
};

struct TraceProfile {
  double wall_span_seconds = 0.0;  ///< last span end - first span begin
  double busy_seconds = 0.0;       ///< sum of per-track interval unions
  double coverage_seconds = 0.0;   ///< union of all span intervals
  /// busy / coverage: 1.0 = fully serial, N = N tracks perfectly
  /// overlapped. The pipeline argument of the paper is this number > 1.
  double overlap_ratio = 0.0;
  std::vector<PhaseStat> phases;   ///< sorted by busy_seconds, desc
};

/// Profiles wall-clock spans (modeled mirror pids excluded — their
/// modeled durations are rolled into PhaseStat::modeled_seconds).
[[nodiscard]] TraceProfile profile_trace(const std::vector<TraceEvent>& events);

}  // namespace hdbscan::obs
