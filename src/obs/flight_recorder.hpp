// Always-on bounded flight recorder (DESIGN.md §14).
//
// A small mutex-guarded ring of structured notes (category + request id +
// formatted message, wall-stamped) that the service and the simulator
// append to whether or not tracing is enabled — the cost is one short
// critical section per note, and the ring overwrites its oldest entries,
// so it is safe to leave on in production paths. When something goes
// wrong — a job ends `failed`, a circuit breaker opens, chaos kills a
// device — dump() writes a post-mortem JSON file combining the ring, the
// metrics registry (which carries the RequestOutcome taxonomy as
// service_requests counters), and the tail of the tracer's events, so
// the state around the failure survives the process.
//
// Dumping is armed by setting a directory (serve/replay/chaos do); while
// unarmed, notes still accumulate but triggers only count. A per-process
// dump cap keeps a crash loop from flooding the disk.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace hdbscan::obs {

struct FlightNote {
  double wall_us = 0.0;  ///< microseconds since the recorder was created
  std::uint64_t request_id = 0;
  char category[16] = {};
  char message[112] = {};
};

class FlightRecorder {
 public:
  static FlightRecorder& global();

  /// Appends one note (printf-formatted, truncated to the note's fixed
  /// buffer). `request_id` 0 = not request-specific.
  __attribute__((format(printf, 4, 5)))
  void note(const char* category, std::uint64_t request_id, const char* fmt,
            ...);

  /// Arms post-mortem dumping into `dir` ("" disarms). `max_dumps` caps
  /// files written per process arm (0 keeps the current cap).
  void arm(std::string dir, unsigned max_dumps = 0);

  /// Records a trigger (reason e.g. "job_failed", "breaker_open",
  /// "device_lost") and, when armed and under the cap, writes
  /// `<dir>/postmortem_<reason>_<n>.json`. Returns the path written, or
  /// "" when no file was produced.
  std::string dump(const char* reason);

  /// Ring capacity in notes (default 256); applies immediately, keeping
  /// the newest notes.
  void set_capacity(std::size_t notes);

  [[nodiscard]] std::vector<FlightNote> notes() const;
  [[nodiscard]] std::uint64_t triggers() const;  ///< dump() calls
  [[nodiscard]] std::uint64_t dumps() const;     ///< files written
  /// Paths written since the last arm() (newest last).
  [[nodiscard]] std::vector<std::string> dump_paths() const;

  /// Test hook: clears notes, trigger/dump counts, and recorded paths
  /// (arming state is kept).
  void reset();

 private:
  FlightRecorder();

  [[nodiscard]] std::string render_json_locked(const char* reason) const;

  mutable std::mutex mutex_;
  std::deque<FlightNote> ring_;
  std::size_t capacity_ = 256;
  std::string dir_;
  unsigned max_dumps_ = 8;
  std::uint64_t triggers_ = 0;
  std::uint64_t dumps_ = 0;
  std::vector<std::string> paths_;
  std::int64_t epoch_ns_ = 0;
};

}  // namespace hdbscan::obs
