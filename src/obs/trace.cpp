#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace hdbscan::obs {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::int64_t clock_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Per-thread event ring. The owning thread appends under `mutex` (always
/// uncontended on the hot path); the tracer locks the same mutex only to
/// snapshot, reset, or re-arm, which happens between workloads. The ring
/// is allocated lazily on the first record so idle threads (streams of an
/// untraced run) cost one small registration node and nothing else.
struct Tracer::ThreadState {
  std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t size = 0;       ///< events stored (<= ring.size())
  std::uint64_t dropped = 0;  ///< events discarded once the ring filled
  std::uint32_t pid = kHostPid;
  std::uint32_t tid = 0;
  char track_name[32] = "host";
  double modeled_us = 0.0;  ///< this thread's modeled clock
};

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadState& Tracer::thread_state() {
  thread_local std::shared_ptr<ThreadState> tls;
  // A thread that outlives one Tracer use and touches another tracer
  // instance is not supported (there is only the global()); the TLS node
  // is registered exactly once per thread.
  if (!tls) {
    tls = std::make_shared<ThreadState>();
    std::lock_guard lock(mutex_);
    tls->pid = kHostPid;
    tls->tid = [&] {
      for (auto& [pid, next] : next_tid_) {
        if (pid == kHostPid) return next++;
      }
      next_tid_.emplace_back(kHostPid, 1);
      return 0u;
    }();
    std::snprintf(tls->track_name, sizeof(tls->track_name), "host-%u",
                  tls->tid);
    // Prune buffers of exited threads that hold no events — they only
    // existed to name a track nobody recorded on.
    std::erase_if(states_, [](const std::shared_ptr<ThreadState>& s) {
      if (s.use_count() != 1) return false;
      std::lock_guard slock(s->mutex);
      return s->size == 0;
    });
    states_.push_back(tls);
  }
  return *tls;
}

void Tracer::enable() {
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    // Drop buffers of threads that already exited; re-arm the live ones.
    std::erase_if(states_, [](const std::shared_ptr<ThreadState>& s) {
      return s.use_count() == 1;
    });
    for (const auto& s : states_) {
      std::lock_guard slock(s->mutex);
      s->ring.clear();
      s->ring.shrink_to_fit();
      s->ring.reserve(0);  // reallocated lazily at the new capacity
      s->size = 0;
      s->dropped = 0;
      s->modeled_us = 0.0;
    }
    (void)cap;
  }
  epoch_ns_.store(clock_ns(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::set_thread_capacity(std::size_t events) {
  capacity_.store(events == 0 ? 1 : events, std::memory_order_relaxed);
}

void Tracer::set_thread_track(std::uint32_t pid, const char* name) {
  ThreadState& s = thread_state();
  std::uint32_t tid = 0;
  {
    std::lock_guard lock(mutex_);
    bool found = false;
    for (auto& [p, next] : next_tid_) {
      if (p == pid) {
        tid = next++;
        found = true;
        break;
      }
    }
    if (!found) {
      next_tid_.emplace_back(pid, 1);
      tid = 0;
    }
  }
  std::lock_guard slock(s.mutex);
  s.pid = pid;
  s.tid = tid;
  std::snprintf(s.track_name, sizeof(s.track_name), "%s", name);
}

void Tracer::record(EventType type, const char* category, const char* name,
                    double ts_us, double dur_us, double model_ts_us,
                    double model_dur_us, double value) {
  if (!enabled()) return;
  ThreadState& s = thread_state();
  std::lock_guard lock(s.mutex);
  if (s.ring.capacity() == 0) {
    s.ring.reserve(capacity_.load(std::memory_order_relaxed));
  }
  if (s.size >= s.ring.capacity()) {
    // Keep the run's beginning; later events are counted, not stored.
    ++s.dropped;
    return;
  }
  s.ring.emplace_back();
  TraceEvent& e = s.ring.back();
  ++s.size;
  std::snprintf(e.name, sizeof(e.name), "%s", name);
  e.category = category;
  e.type = type;
  e.pid = s.pid;
  e.tid = s.tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.model_ts_us = model_ts_us;
  e.model_dur_us = model_dur_us;
  e.value = value;
  const RequestContext& ctx = current_request_context();
  e.request_id = ctx.request_id;
  e.link_id = ctx.link_id;
  std::snprintf(e.tenant, sizeof(e.tenant), "%s", ctx.tenant);
}

void Tracer::record_link(const char* name, std::uint64_t from,
                         const char* from_tenant, std::uint64_t to) {
  RequestContext ctx;
  ctx.request_id = from;
  ctx.link_id = to;
  ctx.set_tenant(from_tenant);
  RequestScope scope(ctx);
  record(EventType::kInstant, "link", name, now_us(), 0.0, 0.0, -1.0, 0.0);
}

double Tracer::now_us() const noexcept {
  return static_cast<double>(clock_ns() -
                             epoch_ns_.load(std::memory_order_relaxed)) *
         1e-3;
}

void Tracer::modeled_advance(double seconds) noexcept {
  ThreadState& s = thread_state();
  std::lock_guard lock(s.mutex);
  s.modeled_us += seconds * 1e6;
}

double Tracer::modeled_now_us() noexcept {
  ThreadState& s = thread_state();
  std::lock_guard lock(s.mutex);
  return s.modeled_us;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadState>> states;
  {
    std::lock_guard lock(mutex_);
    states = states_;
  }
  std::vector<TraceEvent> out;
  for (const auto& s : states) {
    std::lock_guard slock(s->mutex);
    out.insert(out.end(), s->ring.begin(), s->ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

std::vector<TraceTrack> Tracer::tracks() const {
  std::vector<std::shared_ptr<ThreadState>> states;
  {
    std::lock_guard lock(mutex_);
    states = states_;
  }
  std::vector<TraceTrack> out;
  out.reserve(states.size());
  for (const auto& s : states) {
    std::lock_guard slock(s->mutex);
    out.push_back(TraceTrack{s->pid, s->tid, s->track_name});
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::vector<std::shared_ptr<ThreadState>> states;
  {
    std::lock_guard lock(mutex_);
    states = states_;
  }
  std::uint64_t total = 0;
  for (const auto& s : states) {
    std::lock_guard slock(s->mutex);
    total += s->dropped;
  }
  return total;
}

}  // namespace hdbscan::obs
