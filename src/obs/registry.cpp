#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hdbscan::obs {

namespace {

[[nodiscard]] std::string metric_key(std::string_view name,
                                     std::string_view labels) {
  std::string key(name);
  key.push_back('{');
  key.append(labels);
  key.push_back('}');
  return key;
}

/// Minimal JSON string escaping (labels may carry user-supplied text).
[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

[[nodiscard]] std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
    }
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  std::size_t bucket = bounds_.size();  // +inf bucket
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (counts[i] == 0 || static_cast<double>(cum) < rank) continue;
    if (i >= bounds.size()) {
      // +inf bucket: no finite upper edge to interpolate toward.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double within =
        (rank - static_cast<double>(cum - counts[i])) /
        static_cast<double>(counts[i]);
    return lo + (bounds[i] - lo) * std::min(1.0, std::max(0.0, within));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double Histogram::quantile(double q) const noexcept {
  return snapshot().quantile(q);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_seconds_bounds() {
  return {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0};
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Metric& Registry::find_or_create(Kind kind, std::string_view name,
                                           std::string_view labels,
                                           std::vector<double>* bounds) {
  const std::string key = metric_key(name, labels);
  std::lock_guard lock(mutex_);
  auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    if (it->second->kind != kind) {
      throw std::logic_error("Registry: metric '" + key +
                             "' registered with a different kind");
    }
    return *it->second;
  }
  auto m = std::make_unique<Metric>();
  m->kind = kind;
  m->name = std::string(name);
  m->labels = std::string(labels);
  switch (kind) {
    case Kind::kCounter:
      m->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      m->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      m->histogram = std::make_unique<Histogram>(
          (bounds != nullptr && !bounds->empty())
              ? std::move(*bounds)
              : Histogram::default_seconds_bounds());
      break;
  }
  Metric& ref = *m;
  metrics_.emplace(key, std::move(m));
  return ref;
}

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  return *find_or_create(Kind::kCounter, name, labels, nullptr).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  return *find_or_create(Kind::kGauge, name, labels, nullptr).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view labels,
                               std::vector<double> bounds) {
  return *find_or_create(Kind::kHistogram, name, labels, &bounds).histogram;
}

std::string Registry::text() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& [key, m] : metrics_) {
    switch (m->kind) {
      case Kind::kCounter:
        out += key + " " + std::to_string(m->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += key + " " + format_double(m->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot s = m->histogram->snapshot();
        out += key + "_count " + std::to_string(s.count) + "\n";
        out += key + "_sum " + format_double(s.sum) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\n  \"schema_version\": 1,\n  \"metrics\": [\n";
  bool first = true;
  for (const auto& [key, m] : metrics_) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(m->name) + "\", \"labels\": \"" +
           json_escape(m->labels) + "\", ";
    switch (m->kind) {
      case Kind::kCounter:
        out += "\"type\": \"counter\", \"value\": " +
               std::to_string(m->counter->value()) + "}";
        break;
      case Kind::kGauge:
        out += "\"type\": \"gauge\", \"value\": " +
               format_double(m->gauge->value()) + "}";
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot s = m->histogram->snapshot();
        out += "\"type\": \"histogram\", \"count\": " +
               std::to_string(s.count) +
               ", \"sum\": " + format_double(s.sum) + ", \"buckets\": [";
        for (std::size_t i = 0; i < s.counts.size(); ++i) {
          if (i != 0) out += ", ";
          out += "{\"le\": ";
          out += i < s.bounds.size() ? format_double(s.bounds[i])
                                     : std::string("\"inf\"");
          out += ", \"count\": " + std::to_string(s.counts[i]) + "}";
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

void Registry::reset_values() {
  std::lock_guard lock(mutex_);
  for (const auto& [key, m] : metrics_) {
    switch (m->kind) {
      case Kind::kCounter: m->counter->reset(); break;
      case Kind::kGauge: m->gauge->reset(); break;
      case Kind::kHistogram: m->histogram->reset(); break;
    }
  }
}

std::size_t Registry::size() const {
  std::lock_guard lock(mutex_);
  return metrics_.size();
}

}  // namespace hdbscan::obs
