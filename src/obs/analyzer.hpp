// Critical-path analyzer over a request-attributed trace (DESIGN.md §14).
//
// Groups a trace snapshot (or a re-loaded trace file) by request id and
// attributes each request's time two ways: by *stage* — the synthetic
// "stage" spans the service records per job (queue_wait, admission,
// cache, build, stream_union, finalize), which partition a request's
// latency — and by *category* (build, kernel, transfer, ...), the
// instrumentation spans that explain what the dominant stage actually
// did. Powers `hdbscan_cli explain`: top-k slowest requests, per-stage
// wall + modeled breakdown, which stage dominated the p99, and the span
// links showing which requests borrowed another's build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hdbscan::obs {

/// One stage's (or category's) share of a request's time.
struct StageAttribution {
  std::string name;
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;
  std::size_t spans = 0;
};

/// Everything the analyzer knows about one request.
struct RequestProfile {
  std::uint64_t request_id = 0;
  std::string tenant;
  double begin_us = 0.0;  ///< earliest attributed span begin
  double end_us = 0.0;    ///< latest attributed span end
  /// Sum of the request's stage spans (its attributed latency); falls
  /// back to the span-interval extent when no stage spans were recorded.
  double latency_seconds = 0.0;
  double modeled_seconds = 0.0;      ///< summed modeled stage durations
  std::vector<StageAttribution> stages;      ///< "stage" spans, by name
  std::vector<StageAttribution> categories;  ///< other spans, by category
  /// Requests whose build this one rode (from "link" instants): the
  /// coalesce leader or the request that populated the cache entry.
  std::vector<std::uint64_t> linked_to;
  std::string dominant_stage;  ///< stage with the largest wall share
  double dominant_seconds = 0.0;
  std::size_t span_count = 0;
};

struct RequestAnalysis {
  /// Per-request profiles, slowest first (by latency_seconds).
  std::vector<RequestProfile> requests;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Dominant stage of the request at the p99 latency rank — "which
  /// stage do we optimize to move the tail".
  std::string p99_dominant_stage;
  std::size_t unattributed_spans = 0;  ///< spans with no request id
};

/// Analyzes a snapshot (Tracer::snapshot()) or loaded trace file
/// (read_trace_file()). Spans on modeled mirror pids contribute modeled
/// time only; wall-pid spans contribute wall time plus their inline
/// modeled duration when present, so both sources agree.
[[nodiscard]] RequestAnalysis analyze_request_trace(
    const std::vector<TraceEvent>& events);

}  // namespace hdbscan::obs
