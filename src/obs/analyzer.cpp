#include "obs/analyzer.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

namespace hdbscan::obs {

namespace {

StageAttribution& slot(std::vector<StageAttribution>& v,
                       const std::string& name) {
  for (StageAttribution& s : v) {
    if (s.name == name) return s;
  }
  v.push_back(StageAttribution{name, 0.0, 0.0, 0});
  return v.back();
}

[[nodiscard]] double rank_latency(const std::vector<double>& sorted,
                                  double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

RequestAnalysis analyze_request_trace(const std::vector<TraceEvent>& events) {
  RequestAnalysis out;
  std::map<std::uint64_t, RequestProfile> profiles;

  for (const TraceEvent& e : events) {
    if (e.type == EventType::kInstant &&
        std::strcmp(e.category, "link") == 0 && e.request_id != 0 &&
        e.link_id != 0) {
      RequestProfile& p = profiles[e.request_id];
      p.request_id = e.request_id;
      if (p.tenant.empty()) p.tenant = e.tenant;
      if (std::find(p.linked_to.begin(), p.linked_to.end(), e.link_id) ==
          p.linked_to.end()) {
        p.linked_to.push_back(e.link_id);
      }
      continue;
    }
    if (e.type != EventType::kSpan) continue;
    if (e.request_id == 0) {
      ++out.unattributed_spans;
      continue;
    }
    RequestProfile& p = profiles[e.request_id];
    p.request_id = e.request_id;
    if (p.tenant.empty()) p.tenant = e.tenant;

    // Wall/modeled split: a span on a modeled mirror pid is the cost
    // model's view of a wall span already counted (trace files), so it
    // contributes modeled time only; wall spans carry their own inline
    // modeled duration (in-process snapshots).
    const bool modeled_mirror = e.pid >= kModeledPidOffset;
    const double wall = modeled_mirror ? 0.0 : e.dur_us * 1e-6;
    double modeled = modeled_mirror ? e.dur_us * 1e-6 : 0.0;
    if (!modeled_mirror && e.model_dur_us >= 0.0) {
      modeled = e.model_dur_us * 1e-6;
    }

    const bool is_stage = std::strcmp(e.category, "stage") == 0;
    StageAttribution& a =
        is_stage ? slot(p.stages, e.name) : slot(p.categories, e.category);
    a.wall_seconds += wall;
    a.modeled_seconds += modeled;
    if (!modeled_mirror) {
      ++a.spans;
      ++p.span_count;
      if (p.span_count == 1 || e.ts_us < p.begin_us) p.begin_us = e.ts_us;
      if (p.span_count == 1 || e.end_us() > p.end_us) p.end_us = e.end_us();
    }
  }

  for (auto& [id, p] : profiles) {
    double stage_total = 0.0;
    for (const StageAttribution& s : p.stages) {
      stage_total += s.wall_seconds;
      p.modeled_seconds += s.modeled_seconds;
      if (s.wall_seconds > p.dominant_seconds) {
        p.dominant_seconds = s.wall_seconds;
        p.dominant_stage = s.name;
      }
    }
    p.latency_seconds =
        !p.stages.empty() ? stage_total : (p.end_us - p.begin_us) * 1e-6;
    auto by_wall = [](const StageAttribution& a, const StageAttribution& b) {
      return a.wall_seconds > b.wall_seconds;
    };
    std::sort(p.stages.begin(), p.stages.end(), by_wall);
    std::sort(p.categories.begin(), p.categories.end(), by_wall);
    out.requests.push_back(std::move(p));
  }
  std::sort(out.requests.begin(), out.requests.end(),
            [](const RequestProfile& a, const RequestProfile& b) {
              return a.latency_seconds > b.latency_seconds;
            });

  std::vector<double> latencies;
  latencies.reserve(out.requests.size());
  for (const RequestProfile& p : out.requests) {
    latencies.push_back(p.latency_seconds);
  }
  std::sort(latencies.begin(), latencies.end());
  out.p50_seconds = rank_latency(latencies, 0.5);
  out.p99_seconds = rank_latency(latencies, 0.99);

  // The p99's dominant stage: of the requests at or above the p99
  // latency, the stage that soaks up the most summed wall time.
  std::map<std::string, double> tail_stages;
  for (const RequestProfile& p : out.requests) {
    if (p.latency_seconds + 1e-12 < out.p99_seconds) continue;
    for (const StageAttribution& s : p.stages) {
      tail_stages[s.name] += s.wall_seconds;
    }
  }
  double best = -1.0;
  for (const auto& [name, secs] : tail_stages) {
    if (secs > best) {
      best = secs;
      out.p99_dominant_stage = name;
    }
  }
  return out;
}

}  // namespace hdbscan::obs
