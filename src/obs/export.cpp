#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "common/makespan.hpp"
#include "obs/registry.hpp"

namespace hdbscan::obs {

namespace {

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

[[nodiscard]] std::string format_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

[[nodiscard]] std::string process_display_name(std::uint32_t pid) {
  const bool modeled = pid >= kModeledPidOffset;
  const std::uint32_t base = modeled ? pid - kModeledPidOffset : pid;
  std::string name;
  if (base == kHostPid) {
    name = "host";
  } else if (is_device_pid(base)) {
    name = "device " + std::to_string(base - kDevicePidBase);
  } else {
    name = "pid " + std::to_string(base);
  }
  if (modeled) name += " (modeled)";
  return name;
}

void append_metadata(std::string& out, const char* what, std::uint32_t pid,
                     std::uint32_t tid, bool with_tid,
                     const std::string& value) {
  out += "  {\"ph\": \"M\", \"name\": \"";
  out += what;
  out += "\", \"pid\": " + std::to_string(pid);
  if (with_tid) out += ", \"tid\": " + std::to_string(tid);
  out += ", \"args\": {\"name\": \"" + json_escape(value) + "\"}},\n";
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for validate_trace_file. Supports the full JSON value
// grammar but keeps only what the validator inspects: objects as
// string->node maps, arrays as vectors, strings, and numbers.
// ---------------------------------------------------------------------------

struct JsonNode {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonNode> array;
  std::map<std::string, JsonNode> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonNode& out, std::string& error) {
    pos_ = 0;
    if (!parse_value(out)) {
      error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing data after JSON document";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(const char* msg) {
    if (error_.empty()) {
      error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_value(JsonNode& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonNode::Type::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_keyword(out, c == 't');
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") return fail("bad keyword");
      pos_ += 4;
      out.type = JsonNode::Type::kNull;
      return true;
    }
    return parse_number(out);
  }

  bool parse_keyword(JsonNode& out, bool value) {
    const std::string_view kw = value ? "true" : "false";
    if (text_.substr(pos_, kw.size()) != kw) return fail("bad keyword");
    pos_ += kw.size();
    out.type = JsonNode::Type::kBool;
    out.boolean = value;
    return true;
  }

  bool parse_number(JsonNode& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    out.type = JsonNode::Type::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            // Validator only needs ASCII round-tripping; non-ASCII code
            // points are replaced, not decoded.
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_object(JsonNode& out) {
    if (!consume('{')) return fail("expected '{'");
    out.type = JsonNode::Type::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      skip_ws();
      if (!parse_string(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      JsonNode value;
      if (!parse_value(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonNode& out) {
    if (!consume('[')) return fail("expected '['");
    out.type = JsonNode::Type::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonNode value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

[[nodiscard]] const JsonNode* find(const JsonNode& obj, const char* key) {
  if (obj.type != JsonNode::Type::kObject) return nullptr;
  const auto it = obj.object.find(key);
  return it == obj.object.end() ? nullptr : &it->second;
}

[[nodiscard]] std::string get_string(const JsonNode& obj, const char* key) {
  const JsonNode* n = find(obj, key);
  return (n != nullptr && n->type == JsonNode::Type::kString) ? n->str : "";
}

[[nodiscard]] double get_number(const JsonNode& obj, const char* key,
                                double fallback = 0.0) {
  const JsonNode* n = find(obj, key);
  return (n != nullptr && n->type == JsonNode::Type::kNumber) ? n->number
                                                              : fallback;
}

/// Serialized request-attribution args for one event: `"request": N,
/// "tenant": "...", "link": M` — empty when the event is unattributed.
[[nodiscard]] std::string request_args_body(const TraceEvent& e) {
  if (e.request_id == 0 && e.link_id == 0) return {};
  std::string out = "\"request\": " + std::to_string(e.request_id);
  if (e.tenant[0] != '\0') {
    out += ", \"tenant\": \"" + json_escape(e.tenant) + "\"";
  }
  if (e.link_id != 0) out += ", \"link\": " + std::to_string(e.link_id);
  return out;
}

bool write_text_file(const std::string& path, const std::string& body,
                     std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << body;
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<TraceTrack>& tracks) {
  std::string out;
  out.reserve(events.size() * 160 + 4096);
  out += "{\n\"traceEvents\": [\n";

  // Which modeled mirror processes exist (only spans with a modeled
  // duration create them).
  std::set<std::uint32_t> pids;
  std::set<std::uint32_t> modeled_pids;
  for (const TraceEvent& e : events) {
    pids.insert(e.pid);
    if (e.type == EventType::kSpan && e.model_dur_us >= 0.0) {
      modeled_pids.insert(e.pid + kModeledPidOffset);
    }
  }
  for (const TraceTrack& t : tracks) pids.insert(t.pid);

  for (const std::uint32_t pid : pids) {
    append_metadata(out, "process_name", pid, 0, false,
                    process_display_name(pid));
  }
  for (const std::uint32_t pid : modeled_pids) {
    append_metadata(out, "process_name", pid, 0, false,
                    process_display_name(pid));
  }
  for (const TraceTrack& t : tracks) {
    append_metadata(out, "thread_name", t.pid, t.tid, true, t.name);
    if (modeled_pids.count(t.pid + kModeledPidOffset) != 0) {
      append_metadata(out, "thread_name", t.pid + kModeledPidOffset, t.tid,
                      true, t.name + " (modeled)");
    }
  }

  bool first = true;
  auto begin_event = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // Metadata lines above end with ",\n" unconditionally; the first real
  // event glues straight on.
  for (const TraceEvent& e : events) {
    const std::string req = request_args_body(e);
    const std::string req_args = req.empty() ? "" : ", \"args\": {" + req + "}";
    switch (e.type) {
      case EventType::kSpan:
        begin_event();
        out += "  {\"ph\": \"X\", \"name\": \"" + json_escape(e.name) +
               "\", \"cat\": \"" + json_escape(e.category) +
               "\", \"pid\": " + std::to_string(e.pid) +
               ", \"tid\": " + std::to_string(e.tid) +
               ", \"ts\": " + format_us(e.ts_us) +
               ", \"dur\": " + format_us(e.dur_us) + req_args + "}";
        if (e.model_dur_us >= 0.0) {
          begin_event();
          out += "  {\"ph\": \"X\", \"name\": \"" + json_escape(e.name) +
                 "\", \"cat\": \"" + json_escape(e.category) +
                 "\", \"pid\": " + std::to_string(e.pid + kModeledPidOffset) +
                 ", \"tid\": " + std::to_string(e.tid) +
                 ", \"ts\": " + format_us(e.model_ts_us) +
                 ", \"dur\": " + format_us(e.model_dur_us) + req_args + "}";
        }
        break;
      case EventType::kInstant:
        begin_event();
        out += "  {\"ph\": \"i\", \"s\": \"t\", \"name\": \"" +
               json_escape(e.name) + "\", \"cat\": \"" +
               json_escape(e.category) + "\", \"pid\": " +
               std::to_string(e.pid) + ", \"tid\": " + std::to_string(e.tid) +
               ", \"ts\": " + format_us(e.ts_us) + req_args + "}";
        break;
      case EventType::kCounter:
        begin_event();
        out += "  {\"ph\": \"C\", \"name\": \"" + json_escape(e.name) +
               "\", \"cat\": \"" + json_escape(e.category) +
               "\", \"pid\": " + std::to_string(e.pid) +
               ", \"ts\": " + format_us(e.ts_us) +
               ", \"args\": {\"value\": " + format_us(e.value) +
               (req.empty() ? "" : ", " + req) + "}}";
        break;
    }
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, std::string* error) {
  Tracer& t = Tracer::global();
  return write_text_file(path, chrome_trace_json(t.snapshot(), t.tracks()),
                         error);
}

bool write_metrics_json(const std::string& path, std::string* error) {
  return write_text_file(path, Registry::global().json(), error);
}

TraceValidation validate_trace_file(const std::string& path) {
  TraceValidation v;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    v.error = "cannot open '" + path + "'";
    return v;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonNode root;
  JsonParser parser(text);
  if (!parser.parse(root, v.error)) return v;
  const JsonNode* trace_events = find(root, "traceEvents");
  if (trace_events == nullptr ||
      trace_events->type != JsonNode::Type::kArray) {
    v.error = "missing traceEvents array";
    return v;
  }

  std::set<std::uint32_t> device_pids;
  std::set<std::uint64_t> device_span_tracks;
  std::set<std::uint64_t> request_ids;
  for (const JsonNode& e : trace_events->array) {
    const std::string ph = get_string(e, "ph");
    if (ph == "M") continue;  // metadata
    ++v.events;
    const auto pid = static_cast<std::uint32_t>(get_number(e, "pid"));
    const auto tid = static_cast<std::uint32_t>(get_number(e, "tid"));
    const JsonNode* args = find(e, "args");
    const double request = args != nullptr ? get_number(*args, "request") : 0;
    if (request > 0) {
      request_ids.insert(static_cast<std::uint64_t>(request));
    }
    if (ph == "X") {
      ++v.complete_spans;
      if (find(e, "ts") == nullptr || find(e, "dur") == nullptr) {
        v.error = "complete span without ts/dur";
        return v;
      }
      if (request > 0) {
        ++v.spans_with_request;
      } else {
        ++v.spans_without_request;
      }
      if (pid >= kModeledPidOffset) {
        ++v.modeled_span_events;
      } else if (is_device_pid(pid)) {
        device_pids.insert(pid);
        device_span_tracks.insert(
            (static_cast<std::uint64_t>(pid) << 32) | tid);
      } else if (pid == kHostPid) {
        ++v.host_spans;
      }
    } else if (ph == "i" || ph == "I") {
      ++v.instants;
      const std::string cat = get_string(e, "cat");
      if (cat == "fault") v.has_fault_instant = true;
      if (cat == "link") {
        if (request <= 0 || args == nullptr ||
            get_number(*args, "link") <= 0) {
          v.error = "link instant without request/link args";
          return v;
        }
        ++v.link_events;
      }
    } else if (ph == "C") {
      ++v.counters;
    }
  }
  v.device_pids.assign(device_pids.begin(), device_pids.end());
  v.device_span_tracks = device_span_tracks.size();
  v.distinct_request_ids = request_ids.size();
  v.ok = true;
  return v;
}

bool read_trace_file(const std::string& path, std::vector<TraceEvent>* events,
                     std::string* error) {
  events->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonNode root;
  JsonParser parser(text);
  std::string parse_error;
  if (!parser.parse(root, parse_error)) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  const JsonNode* trace_events = find(root, "traceEvents");
  if (trace_events == nullptr ||
      trace_events->type != JsonNode::Type::kArray) {
    if (error != nullptr) *error = "missing traceEvents array";
    return false;
  }

  // TraceEvent::category is a `const char*` with static-storage contract;
  // loaded categories are interned in a process-lifetime pool.
  static std::mutex pool_mutex;
  static std::set<std::string>& category_pool = *new std::set<std::string>;

  for (const JsonNode& n : trace_events->array) {
    const std::string ph = get_string(n, "ph");
    TraceEvent e;
    if (ph == "X") {
      e.type = EventType::kSpan;
    } else if (ph == "i" || ph == "I") {
      e.type = EventType::kInstant;
    } else if (ph == "C") {
      e.type = EventType::kCounter;
    } else {
      continue;  // metadata and anything the analyzer does not consume
    }
    std::snprintf(e.name, sizeof(e.name), "%s", get_string(n, "name").c_str());
    {
      std::lock_guard lock(pool_mutex);
      e.category = category_pool.insert(get_string(n, "cat")).first->c_str();
    }
    e.pid = static_cast<std::uint32_t>(get_number(n, "pid"));
    e.tid = static_cast<std::uint32_t>(get_number(n, "tid"));
    e.ts_us = get_number(n, "ts");
    e.dur_us = get_number(n, "dur");
    if (const JsonNode* args = find(n, "args")) {
      e.request_id = static_cast<std::uint64_t>(get_number(*args, "request"));
      e.link_id = static_cast<std::uint64_t>(get_number(*args, "link"));
      std::snprintf(e.tenant, sizeof(e.tenant), "%s",
                    get_string(*args, "tenant").c_str());
      e.value = get_number(*args, "value");
    }
    events->push_back(e);
  }
  return true;
}

TraceProfile profile_trace(const std::vector<TraceEvent>& events) {
  TraceProfile p;
  std::map<std::string, PhaseStat> phases;
  std::map<std::uint64_t, std::vector<Interval>> per_track;
  std::vector<Interval> all;
  double min_ts = 0.0;
  double max_end = 0.0;
  bool any = false;

  for (const TraceEvent& e : events) {
    if (e.type != EventType::kSpan) continue;
    const Interval iv{e.ts_us * 1e-6, e.end_us() * 1e-6};
    PhaseStat& ps = phases[e.category];
    ps.category = e.category;
    ++ps.spans;
    if (e.model_dur_us >= 0.0) ps.modeled_seconds += e.model_dur_us * 1e-6;
    per_track[(static_cast<std::uint64_t>(e.pid) << 32) | e.tid].push_back(iv);
    all.push_back(iv);
    if (!any) {
      min_ts = iv.begin;
      max_end = iv.end;
      any = true;
    } else {
      min_ts = std::min(min_ts, iv.begin);
      max_end = std::max(max_end, iv.end);
    }
  }
  if (!any) return p;

  // Per-category busy time needs its own union so nested spans within the
  // same category (e.g. a batch span wrapping kernel spans) do not double
  // count.
  std::map<std::string, std::vector<Interval>> per_category;
  for (const TraceEvent& e : events) {
    if (e.type != EventType::kSpan) continue;
    per_category[e.category].push_back(
        Interval{e.ts_us * 1e-6, e.end_us() * 1e-6});
  }
  for (auto& [cat, ivs] : per_category) {
    phases[cat].busy_seconds = interval_union_seconds(ivs);
  }

  p.wall_span_seconds = max_end - min_ts;
  for (const auto& [track, ivs] : per_track) {
    p.busy_seconds += interval_union_seconds(ivs);
  }
  p.coverage_seconds = interval_union_seconds(all);
  p.overlap_ratio =
      p.coverage_seconds > 0.0 ? p.busy_seconds / p.coverage_seconds : 0.0;

  p.phases.reserve(phases.size());
  for (auto& [cat, ps] : phases) p.phases.push_back(std::move(ps));
  std::sort(p.phases.begin(), p.phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              return a.busy_seconds > b.busy_seconds;
            });
  return p;
}

}  // namespace hdbscan::obs
