#include "obs/flight_recorder.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace hdbscan::obs {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::int64_t clock_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

[[nodiscard]] std::string format_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

/// How many of the tracer's newest events ride along in a post-mortem.
constexpr std::size_t kTraceTail = 64;

}  // namespace

FlightRecorder::FlightRecorder() : epoch_ns_(clock_ns()) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::note(const char* category, std::uint64_t request_id,
                          const char* fmt, ...) {
  FlightNote n;
  n.wall_us = static_cast<double>(clock_ns() - epoch_ns_) * 1e-3;
  n.request_id = request_id;
  std::snprintf(n.category, sizeof(n.category), "%s", category);
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(n.message, sizeof(n.message), fmt, args);
  va_end(args);
  std::lock_guard lock(mutex_);
  while (ring_.size() >= capacity_) ring_.pop_front();
  ring_.push_back(n);
}

void FlightRecorder::arm(std::string dir, unsigned max_dumps) {
  std::lock_guard lock(mutex_);
  dir_ = std::move(dir);
  if (max_dumps != 0) max_dumps_ = max_dumps;
  paths_.clear();
  dumps_ = 0;
}

void FlightRecorder::set_capacity(std::size_t notes) {
  std::lock_guard lock(mutex_);
  capacity_ = notes == 0 ? 1 : notes;
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::string FlightRecorder::render_json_locked(const char* reason) const {
  std::string out = "{\n  \"schema_version\": 1,\n  \"reason\": \"";
  out += json_escape(reason);
  out += "\",\n  \"trigger\": " + std::to_string(triggers_);
  out += ",\n  \"wall_us\": " +
         format_us(static_cast<double>(clock_ns() - epoch_ns_) * 1e-3);
  out += ",\n  \"notes\": [\n";
  bool first = true;
  for (const FlightNote& n : ring_) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"wall_us\": " + format_us(n.wall_us) +
           ", \"request\": " + std::to_string(n.request_id) +
           ", \"category\": \"" + json_escape(n.category) +
           "\", \"message\": \"" + json_escape(n.message) + "\"}";
  }
  out += "\n  ],\n  \"metrics\": ";
  // The registry JSON carries the RequestOutcome taxonomy
  // (service_requests{outcome=...}) plus device/build counters.
  out += Registry::global().json();
  // Tail of the trace ring: the newest events leading up to the trigger.
  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  const std::size_t begin =
      events.size() > kTraceTail ? events.size() - kTraceTail : 0;
  out += ",\n  \"trace\": {\"events\": " + std::to_string(events.size()) +
         ", \"dropped\": " + std::to_string(Tracer::global().dropped()) +
         ", \"recent\": [\n";
  first = true;
  for (std::size_t i = begin; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (!first) out += ",\n";
    first = false;
    const char* type = e.type == EventType::kSpan      ? "span"
                       : e.type == EventType::kInstant ? "instant"
                                                       : "counter";
    out += "    {\"type\": \"" + std::string(type) + "\", \"cat\": \"" +
           json_escape(e.category) + "\", \"name\": \"" +
           json_escape(e.name) + "\", \"pid\": " + std::to_string(e.pid) +
           ", \"ts\": " + format_us(e.ts_us) +
           ", \"dur\": " + format_us(e.dur_us) +
           ", \"request\": " + std::to_string(e.request_id) + "}";
  }
  out += "\n  ]}\n}\n";
  return out;
}

std::string FlightRecorder::dump(const char* reason) {
  std::string path;
  std::string body;
  {
    std::lock_guard lock(mutex_);
    ++triggers_;
    if (dir_.empty() || dumps_ >= max_dumps_) return {};
    ++dumps_;
    path = dir_ + "/postmortem_" + reason + "_" +
           std::to_string(dumps_) + ".json";
    body = render_json_locked(reason);
    paths_.push_back(path);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return {};
  out << body;
  out.flush();
  return out ? path : std::string{};
}

std::vector<FlightNote> FlightRecorder::notes() const {
  std::lock_guard lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t FlightRecorder::triggers() const {
  std::lock_guard lock(mutex_);
  return triggers_;
}

std::uint64_t FlightRecorder::dumps() const {
  std::lock_guard lock(mutex_);
  return dumps_;
}

std::vector<std::string> FlightRecorder::dump_paths() const {
  std::lock_guard lock(mutex_);
  return paths_;
}

void FlightRecorder::reset() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  triggers_ = 0;
  dumps_ = 0;
  paths_.clear();
}

}  // namespace hdbscan::obs
