// Work counters and the kernel time model.
#pragma once

#include <cstdint>

#include "cudasim/config.hpp"

namespace cudasim {

/// Work performed by one thread block; accumulated without atomics because
/// a block always executes on a single executor thread.
struct BlockCounters {
  std::uint64_t flops = 0;
  std::uint64_t global_bytes = 0;
  std::uint64_t shared_bytes = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t barriers = 0;

  void merge(const BlockCounters& o) noexcept {
    flops += o.flops;
    global_bytes += o.global_bytes;
    shared_bytes += o.shared_bytes;
    atomic_ops += o.atomic_ops;
    barriers += o.barriers;
  }
};

/// Aggregated result of one kernel launch.
struct KernelStats {
  std::uint64_t blocks = 0;
  std::uint64_t threads = 0;  ///< gridDim.x * blockDim.x (paper's nGPU)
  BlockCounters work;
  double wall_seconds = 0.0;     ///< simulator execution time (host CPU)
  double modeled_seconds = 0.0;  ///< cost-model GPU time

  /// Applies the device cost model: memory and compute pipelines overlap
  /// (take the max), atomics serialize at the memory controller, and each
  /// block/barrier/launch adds fixed scheduling overhead.
  void finalize(const DeviceConfig& cfg) noexcept {
    const double mem_s =
        static_cast<double>(work.global_bytes) / (cfg.mem_bandwidth_gbps * 1e9);
    const double shared_s = static_cast<double>(work.shared_bytes) /
                            (cfg.shared_bandwidth_gbps * 1e9);
    const double compute_s = static_cast<double>(work.flops) / cfg.peak_flops();
    const double atomic_s = static_cast<double>(work.atomic_ops) *
                            cfg.atomic_ns * 1e-9;
    const double overhead_s =
        static_cast<double>(blocks) * cfg.block_launch_us * 1e-6 /
            static_cast<double>(cfg.sm_count) +
        static_cast<double>(work.barriers) * cfg.barrier_us * 1e-6 /
            static_cast<double>(cfg.sm_count) +
        cfg.kernel_launch_us * 1e-6;
    const double pipelines = mem_s > compute_s ? mem_s : compute_s;
    modeled_seconds = (pipelines > shared_s ? pipelines : shared_s) +
                      atomic_s + overhead_s;
  }
};

/// Modeled GPU time for an exclusive prefix scan over `bytes` of count
/// data: a work-efficient (Blelloch-style) scan streams the array roughly
/// twice (up-sweep read + down-sweep read/write) in two kernel launches.
/// Linear in the batch's *point* count, unlike the pair-sort it replaces,
/// which is linear in the far larger pair count.
inline double modeled_scan_seconds(const DeviceConfig& cfg,
                                   std::uint64_t bytes) {
  constexpr double kSweeps = 3.0;  // up-sweep in, down-sweep in+out
  return kSweeps * static_cast<double>(bytes) /
             (cfg.mem_bandwidth_gbps * 1e9) +
         2.0 * cfg.kernel_launch_us * 1e-6;
}

/// Device-lifetime totals, snapshot via Device::metrics().
struct DeviceMetrics {
  std::uint64_t kernel_launches = 0;
  double kernel_modeled_seconds = 0.0;
  double kernel_wall_seconds = 0.0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  double transfer_seconds = 0.0;  ///< modeled (and slept, when throttled)
  double pinned_alloc_seconds = 0.0;
  double sort_seconds = 0.0;  ///< modeled on-device sort time
  double scan_seconds = 0.0;  ///< modeled on-device prefix-scan time
  std::size_t current_mem_bytes = 0;
  std::size_t peak_mem_bytes = 0;

  // --- buffer-pool accounting (see cudasim/buffer_pool.hpp) ---
  std::uint64_t pool_device_hits = 0;    ///< device checkouts served cached
  std::uint64_t pool_device_misses = 0;  ///< device checkouts that allocated
  std::uint64_t pool_pinned_hits = 0;    ///< pinned checkouts served cached
  std::uint64_t pool_pinned_misses = 0;  ///< pinned checkouts that page-locked
  std::uint64_t pool_trim_bytes = 0;     ///< device bytes freed by OOM trims

  // --- fault-injection accounting (zero unless a FaultInjector fired) ---
  std::uint64_t injected_oom_faults = 0;       ///< scripted alloc failures
  std::uint64_t injected_transient_faults = 0; ///< scripted launch faults
  std::uint64_t degraded_transfers = 0;        ///< transfers at reduced PCIe
  std::uint64_t refused_ops = 0;               ///< ops after device loss
  bool device_lost = false;                    ///< device permanently gone
};

}  // namespace cudasim
