// Deterministic fault injection for the simulated device.
//
// A FaultPlan scripts *when* hazards fire, in terms of per-device operation
// counters rather than wall time, so a plan replays identically across runs
// (given the same stream layout): the N-th global allocation fails, the
// N-th kernel launch faults transiently, PCIe bandwidth degrades from the
// K-th transfer onward, the whole device is lost at global op L. A
// FaultInjector is attached to a Device via SimulationOptions::fault and
// consulted by every accounting hook (device.cpp, stream.cpp via
// blocking_transfer, kernel.hpp, sort.hpp).
//
// The injector only *decides*; the Device translates decisions into the
// matching SimError subclasses and per-device fault metrics, so consumers
// (NeighborTableBuilder's ResiliencePolicy, the pipeline's per-variant
// outcomes) see exactly the exceptions real CUDA failure modes map to.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cudasim {

/// What a fault hook decided for the current operation.
enum class FaultFire {
  kNone,             ///< proceed normally
  kOutOfMemory,      ///< this allocation fails with DeviceOutOfMemory
  kTransientKernel,  ///< this launch fails once with TransientKernelFault
  kDeviceLost,       ///< the device is gone; this and every later op throws
};

/// A scripted schedule of hazards. All indices are 1-based op ordinals
/// within their category; 0 disables the corresponding fault.
struct FaultPlan {
  std::uint64_t seed = 0;  ///< provenance (set by randomized())

  /// Global allocations (allocate_global calls) that throw
  /// DeviceOutOfMemory. The allocation does not consume capacity.
  std::vector<std::uint64_t> oom_allocs;

  /// Kernel launches that fail once with TransientKernelFault before any
  /// block runs. A re-issued launch lands on the next ordinal and succeeds.
  std::vector<std::uint64_t> transient_launches;

  /// From this transfer ordinal onward, PCIe bandwidth is divided by
  /// degrade_factor (modeled — and slept, when throttled).
  std::uint64_t degrade_from_transfer = 0;
  double degrade_factor = 1.0;

  /// Global op ordinal (allocations + launches + transfers + sorts/scans)
  /// at which the device is permanently lost.
  std::uint64_t lost_at_op = 0;

  /// Seeded random plan for chaos testing: always injects at least one
  /// fault; may stack several. Same seed => same plan.
  [[nodiscard]] static FaultPlan randomized(std::uint64_t seed);

  [[nodiscard]] bool empty() const noexcept {
    return oom_allocs.empty() && transient_launches.empty() &&
           degrade_from_transfer == 0 && lost_at_op == 0;
  }

  /// One-line human-readable summary of the scripted hazards.
  [[nodiscard]] std::string describe() const;
};

/// Lifetime totals of what actually fired (also mirrored, per device, into
/// DeviceMetrics by the Device hooks).
struct FaultCounters {
  std::uint64_t oom_fired = 0;
  std::uint64_t transient_fired = 0;
  std::uint64_t degraded_transfers = 0;
  std::uint64_t refused_ops = 0;  ///< ops rejected after device loss
  bool lost = false;
};

/// Thread-safe decision engine for one device. Each on_* hook advances the
/// relevant counters and reports whether (and how) the op must fail.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultFire on_alloc();
  FaultFire on_kernel_launch();
  /// Also writes the current bandwidth slowdown (>= 1.0) for this transfer.
  FaultFire on_transfer(double* slowdown);
  /// Generic device op (pinned alloc, on-device sort/scan): only the
  /// device-lost hazard applies.
  FaultFire on_op();

  [[nodiscard]] bool lost() const;
  [[nodiscard]] FaultCounters counters() const;
  [[nodiscard]] std::uint64_t ops() const;
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Advances the global op ordinal; flips to lost at plan_.lost_at_op.
  [[nodiscard]] bool advance_op_locked();

  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::uint64_t allocs_ = 0;
  std::uint64_t launches_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t ops_ = 0;
  FaultCounters counters_;
};

}  // namespace cudasim
