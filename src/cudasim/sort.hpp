// On-device sort_by_key and exclusive_scan, standing in for CUDA Thrust's
// sort_by_key / exclusive_scan.
//
//  * sort_by_key (paper Alg. 4 line 7): the result set stays on the GPU
//    and is sorted by key so identical keys become adjacent before the D2H
//    transfer. Implementation: LSD radix sort over 32-bit keys, 4 passes
//    of 8 bits, using a device temp buffer (accounted against device
//    memory, like Thrust's internal allocations). Stable, like
//    thrust::sort_by_key.
//  * exclusive_scan: turns per-point neighbor counts into CSR offsets for
//    the two-pass table builder — the count-then-fill pattern that makes
//    the result sort unnecessary (cf. the tree-based GPU DBSCAN of
//    Prokopenko et al.). Modeled as a work-efficient Blelloch scan.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "cudasim/buffer.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/device.hpp"
#include "cudasim/metrics.hpp"
#include "obs/trace.hpp"

namespace cudasim {

/// Modeled GPU time for a 4-pass radix sort of `bytes` of pair data:
/// each pass streams the data in and out once plus a histogram read.
inline double modeled_sort_seconds(const DeviceConfig& cfg,
                                   std::uint64_t bytes) {
  constexpr double kPasses = 4.0;
  const double traffic = kPasses * (2.0 + 0.5) * static_cast<double>(bytes);
  return traffic / (cfg.mem_bandwidth_gbps * 1e9) + cfg.kernel_launch_us * 1e-6;
}

/// Modeled PCIe transfer time for `bytes` (either direction).
inline double modeled_transfer_seconds(const DeviceConfig& cfg,
                                       std::uint64_t bytes, bool pinned) {
  const double bw = pinned ? cfg.pcie_pinned_gbps : cfg.pcie_pageable_gbps;
  return cfg.pcie_latency_us * 1e-6 + static_cast<double>(bytes) / (bw * 1e9);
}

/// Modeled page-lock (pinned allocation) time for `bytes`.
inline double modeled_pinned_alloc_seconds(const DeviceConfig& cfg,
                                           std::uint64_t bytes) {
  return cfg.pinned_alloc_base_us * 1e-6 +
         static_cast<double>(bytes) / (cfg.pinned_alloc_gbps * 1e9);
}

/// Sorts `count` records of `buf` in place by the 32-bit key extracted by
/// `key_of`. Works on DeviceBuffer or PooledDeviceBuffer (anything with
/// device_data()/size()). Runs synchronously on the calling thread
/// (enqueue it on a Stream via host_fn for stream-ordered execution).
/// The Thrust-style scratch allocation comes from the device's buffer
/// pool, so repeated sorts stop churning device malloc/free.
template <typename Buf, typename KeyFn>
void sort_by_key(Device& device, Buf& buf, std::size_t count, KeyFn key_of) {
  using KV = std::remove_reference_t<decltype(buf.device_data()[0])>;
  if (count > buf.size()) {
    throw SimError("sort_by_key: count exceeds buffer size");
  }
  device.fault_on_device_op();  // throws DeviceLost once the device is gone
  TRACE_SPAN("sort", "sort_by_key d%u n=%zu", device.id(), count);
  if (count > 1) {
    PooledDeviceBuffer<KV> temp(device, count);  // pooled scratch
    KV* a = buf.device_data();
    KV* b = temp.device_data();
    std::array<std::uint32_t, 256> histogram{};
    for (int pass = 0; pass < 4; ++pass) {
      const int shift = pass * 8;
      histogram.fill(0);
      for (std::size_t i = 0; i < count; ++i) {
        ++histogram[(key_of(a[i]) >> shift) & 0xff];
      }
      std::uint32_t running = 0;
      for (auto& h : histogram) {
        const std::uint32_t c = h;
        h = running;
        running += c;
      }
      for (std::size_t i = 0; i < count; ++i) {
        b[histogram[(key_of(a[i]) >> shift) & 0xff]++] = a[i];
      }
      std::swap(a, b);
    }
    // 4 passes end back in the original buffer (a == buf.device_data()).
  }
  const double model_s =
      modeled_sort_seconds(device.config(), count * sizeof(KV));
  hdbscan::obs::modeled_advance(model_s);
  device.record_sort(model_s);
}

/// Exclusive prefix scan over the first `count` elements of `buf`, in
/// place: buf[i] becomes sum(buf[0..i)), and the grand total is returned.
/// Runs synchronously on the calling thread, like sort_by_key; the modeled
/// Blelloch-scan cost is recorded against the device (metrics.hpp).
template <typename Buf>
std::uint64_t exclusive_scan(Device& device, Buf& buf, std::size_t count) {
  using T = std::remove_reference_t<decltype(buf.device_data()[0])>;
  if (count > buf.size()) {
    throw SimError("exclusive_scan: count exceeds buffer size");
  }
  device.fault_on_device_op();  // throws DeviceLost once the device is gone
  TRACE_SPAN("sort", "scan d%u n=%zu", device.id(), count);
  T* data = buf.device_data();
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t v = data[i];
    data[i] = static_cast<T>(running);
    running += v;
  }
  const double model_s =
      modeled_scan_seconds(device.config(), count * sizeof(T));
  hdbscan::obs::modeled_advance(model_s);
  device.record_scan(model_s);
  return running;
}

}  // namespace cudasim
