// Size-bucketed arena for device scratch and pinned host staging.
//
// The paper singles out pinned (page-locked) allocation as expensive enough
// to shape the batching scheme; device malloc/free churn per batch and per
// sweep variant costs real time too. The pool amortizes both: blocks are
// checked out, used, and returned to per-bucket free lists, so the modeled
// page-lock cost (Device::allocate_pinned) and the device allocation are
// paid once per process per bucket instead of once per batch/variant.
//
// Lifecycle rules (see DESIGN.md §10):
//   * acquire() rounds the request up to a power-of-2 bucket and reuses a
//     cached block when one exists (a *hit* — no allocation, no modeled
//     pinned page-lock time). Misses allocate through the device and are
//     flagged `fresh` so callers can model first-touch costs exactly once.
//   * release() returns the block to its bucket's free list — unless the
//     device is lost, in which case the block is freed outright (nothing
//     should keep a dead device's capacity reserved).
//   * Cached *device* blocks still hold device capacity. When an acquire
//     hits DeviceOutOfMemory, the pool trims its device free lists and
//     retries once — but only if the trim actually freed bytes. A cold
//     pool rethrows immediately, so scripted fault-injection OOMs keep
//     driving the builder's degradation ladder exactly as before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "cudasim/device.hpp"

namespace cudasim {

class BufferPool {
 public:
  /// A checked-out block. `bucket_bytes` is the rounded-up capacity that
  /// must be handed back to release(); `fresh` is true when the pool had
  /// to allocate (pool miss) rather than reuse a cached block.
  struct Checkout {
    void* data = nullptr;
    std::size_t bucket_bytes = 0;
    bool pinned = false;
    bool fresh = false;
  };

  explicit BufferPool(Device& device) : device_(&device) {}
  ~BufferPool() { free_all(); }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Checks out a block of at least `bytes` (device global memory, or
  /// pinned host memory when `pinned`). Propagates the device's
  /// DeviceOutOfMemory / DeviceLost; device-memory misses trim-and-retry
  /// once when the trim freed something.
  [[nodiscard]] Checkout acquire(std::size_t bytes, bool pinned);

  /// Returns a block to its free list (or frees it if the device is lost).
  /// Passing a default-constructed / already-released Checkout is a no-op.
  void release(Checkout& c) noexcept;

  /// Frees every cached *device* block, returning capacity to the device;
  /// returns the number of bytes freed. Pinned blocks are not trimmed —
  /// re-pinning is the cost the pool exists to avoid.
  std::size_t trim() noexcept;

  /// Total bytes sitting in the device / pinned free lists (tests).
  [[nodiscard]] std::size_t cached_device_bytes() const;
  [[nodiscard]] std::size_t cached_pinned_bytes() const;

  /// Smallest power-of-2 bucket holding `bytes` (min 256).
  [[nodiscard]] static std::size_t bucket_for(std::size_t bytes) noexcept {
    std::size_t b = 256;
    while (b < bytes) b <<= 1;
    return b;
  }

 private:
  void free_all() noexcept;

  Device* device_;
  mutable std::mutex mutex_;
  std::map<std::size_t, std::vector<void*>> free_device_;
  std::map<std::size_t, std::vector<void*>> free_pinned_;
};

/// Device scratch checked out from the owning device's pool. Drop-in for
/// DeviceBuffer<T> in kernel-facing code (device_data()/size()/bytes()).
template <typename T>
class PooledDeviceBuffer {
 public:
  PooledDeviceBuffer() = default;

  PooledDeviceBuffer(Device& device, std::size_t count)
      : device_(&device), count_(count) {
    checkout_ = device.pool().acquire(count * sizeof(T), /*pinned=*/false);
  }

  PooledDeviceBuffer(PooledDeviceBuffer&& o) noexcept
      : device_(std::exchange(o.device_, nullptr)),
        checkout_(std::exchange(o.checkout_, {})),
        count_(std::exchange(o.count_, 0)) {}

  PooledDeviceBuffer& operator=(PooledDeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      device_ = std::exchange(o.device_, nullptr);
      checkout_ = std::exchange(o.checkout_, {});
      count_ = std::exchange(o.count_, 0);
    }
    return *this;
  }

  PooledDeviceBuffer(const PooledDeviceBuffer&) = delete;
  PooledDeviceBuffer& operator=(const PooledDeviceBuffer&) = delete;

  ~PooledDeviceBuffer() { release(); }

  [[nodiscard]] T* device_data() noexcept {
    return static_cast<T*>(checkout_.data);
  }
  [[nodiscard]] const T* device_data() const noexcept {
    return static_cast<const T*>(checkout_.data);
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return count_ * sizeof(T);
  }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] Device* device() const noexcept { return device_; }
  /// True when this checkout allocated fresh memory (pool miss).
  [[nodiscard]] bool fresh() const noexcept { return checkout_.fresh; }

  [[nodiscard]] std::span<T> unsafe_host_view() noexcept {
    return {device_data(), count_};
  }
  [[nodiscard]] std::span<const T> unsafe_host_view() const noexcept {
    return {device_data(), count_};
  }

 private:
  void release() noexcept {
    if (device_ != nullptr && checkout_.data != nullptr) {
      device_->pool().release(checkout_);
    }
    device_ = nullptr;
    checkout_ = {};
    count_ = 0;
  }

  Device* device_ = nullptr;
  BufferPool::Checkout checkout_{};
  std::size_t count_ = 0;
};

/// Pinned host staging checked out from the pool. Drop-in for
/// PinnedBuffer<T> (data()/size()/span()); a pool hit skips the modeled
/// page-lock cost entirely — the mechanism behind flat pinned-alloc time
/// across reuse sweeps.
template <typename T>
class PooledPinnedBuffer {
 public:
  PooledPinnedBuffer() = default;

  PooledPinnedBuffer(Device& device, std::size_t count)
      : device_(&device), count_(count) {
    checkout_ = device.pool().acquire(count * sizeof(T), /*pinned=*/true);
  }

  PooledPinnedBuffer(PooledPinnedBuffer&& o) noexcept
      : device_(std::exchange(o.device_, nullptr)),
        checkout_(std::exchange(o.checkout_, {})),
        count_(std::exchange(o.count_, 0)) {}

  PooledPinnedBuffer& operator=(PooledPinnedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      device_ = std::exchange(o.device_, nullptr);
      checkout_ = std::exchange(o.checkout_, {});
      count_ = std::exchange(o.count_, 0);
    }
    return *this;
  }

  PooledPinnedBuffer(const PooledPinnedBuffer&) = delete;
  PooledPinnedBuffer& operator=(const PooledPinnedBuffer&) = delete;

  ~PooledPinnedBuffer() { release(); }

  [[nodiscard]] T* data() noexcept { return static_cast<T*>(checkout_.data); }
  [[nodiscard]] const T* data() const noexcept {
    return static_cast<const T*>(checkout_.data);
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return count_ * sizeof(T);
  }
  [[nodiscard]] bool fresh() const noexcept { return checkout_.fresh; }
  [[nodiscard]] std::span<T> span() noexcept { return {data(), count_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data(), count_};
  }

 private:
  void release() noexcept {
    if (device_ != nullptr && checkout_.data != nullptr) {
      device_->pool().release(checkout_);
    }
    device_ = nullptr;
    checkout_ = {};
    count_ = 0;
  }

  Device* device_ = nullptr;
  BufferPool::Checkout checkout_{};
  std::size_t count_ = 0;
};

}  // namespace cudasim
