#pragma once

#include <stdexcept>
#include <string>

namespace cudasim {

/// Base class for all simulator errors.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a device allocation would exceed global memory capacity —
/// the hazard the paper's batching scheme exists to avoid.
class DeviceOutOfMemory : public SimError {
 public:
  DeviceOutOfMemory(std::size_t requested, std::size_t used,
                    std::size_t capacity)
      : SimError("device out of memory: requested " +
                 std::to_string(requested) + " B with " +
                 std::to_string(used) + "/" + std::to_string(capacity) +
                 " B in use"),
        requested_bytes(requested),
        used_bytes(used),
        capacity_bytes(capacity) {}

  std::size_t requested_bytes;
  std::size_t used_bytes;
  std::size_t capacity_bytes;
};

/// Thrown for invalid launch configurations (block too large, shared memory
/// request over the per-block limit, ...).
class LaunchError : public SimError {
 public:
  using SimError::SimError;
};

/// A transient kernel/stream fault (the simulated analogue of a sticky-free
/// launch failure: ECC hiccup, watchdog preemption, driver retry). The
/// launch that observed it did no work; re-issuing the same launch is safe
/// and expected to succeed.
class TransientKernelFault : public SimError {
 public:
  using SimError::SimError;
};

/// Permanent device loss (cudaErrorDeviceUnavailable): once thrown, every
/// subsequent operation on the same device throws it again. Recovery means
/// moving the work to another device or to the host, never retrying here.
class DeviceLost : public SimError {
 public:
  using SimError::SimError;
};

}  // namespace cudasim
