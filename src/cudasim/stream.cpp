#include "cudasim/stream.hpp"

#include <cstring>

#include "common/timer.hpp"

namespace cudasim {

Stream::Stream(Device& device) : device_(device) {
  worker_ = std::thread([this] { worker_loop(); });
}

Stream::~Stream() {
  synchronize();
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void Stream::enqueue(std::function<void()> op) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw SimError("Stream: enqueue after destruction began");
    queue_.push_back(std::move(op));
  }
  cv_.notify_one();
}

void Stream::worker_loop() {
  for (;;) {
    std::function<void()> op;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;
      op = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    op();
    {
      std::lock_guard lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void Stream::synchronize() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void Stream::do_transfer(void* dst, const void* src, std::size_t bytes,
                         bool to_device, HostMem host_kind) {
  device_.blocking_transfer(dst, src, bytes, to_device,
                            host_kind == HostMem::Pinned);
}

}  // namespace cudasim
