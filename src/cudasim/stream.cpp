#include "cudasim/stream.hpp"

#include <cstring>

#include "common/request_context.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace cudasim {

Stream::Stream(Device& device) : device_(device) {
  worker_ = std::thread([this] { worker_loop(); });
}

Stream::~Stream() {
  // Drain without rethrowing: a captured async failure (e.g. an injected
  // DeviceLost during a queued transfer) must not escape a destructor.
  {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void Stream::enqueue(std::function<void()> op) {
  // Capture the enqueuer's request context: the op runs on the stream's
  // worker thread, and the spans it records (kernels, transfers, sorts)
  // must attribute to the request that queued the work.
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw SimError("Stream: enqueue after destruction began");
    queue_.push_back([op = std::move(op),
                      ctx = hdbscan::current_request_context()] {
      hdbscan::RequestScope scope(ctx);
      op();
    });
  }
  cv_.notify_one();
}

void Stream::worker_loop() {
  // The worker is a "thread" row inside its device's trace process; every
  // span recorded while an op runs lands on this track.
  hdbscan::obs::set_thread_track(hdbscan::obs::device_pid(device_.id()),
                                 "stream");
  for (;;) {
    std::function<void()> op;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;
      op = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    // An op that throws (device loss mid-transfer, a fault in a queued
    // launch) poisons the stream instead of killing the process: the first
    // exception is kept and rethrown at the next synchronize(), mirroring
    // how CUDA surfaces async errors at the next sync point.
    try {
      op();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void Stream::synchronize() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  if (error_) {
    // Rethrow once; the stream stays usable for cleanup/drain afterwards.
    std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void Stream::do_transfer(void* dst, const void* src, std::size_t bytes,
                         bool to_device, HostMem host_kind) {
  device_.blocking_transfer(dst, src, bytes, to_device,
                            host_kind == HostMem::Pinned);
}

}  // namespace cudasim
