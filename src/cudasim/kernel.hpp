// Kernel execution engine.
//
// Two launch models mirror the paper's two kernels:
//
//  * Flat launch — every logical thread is independent (no __syncthreads).
//    Used by GPUCalcGlobal. Blocks execute in parallel on the executor
//    pool; threads within a block run sequentially on one executor thread.
//
//  * Cooperative launch — threads within a block may call co_await
//    ctx.sync(), the simulator's __syncthreads(). Used by GPUCalcShared.
//    Each logical thread is a C++20 coroutine; the block executor resumes
//    all live threads round-robin, so between two barriers every thread
//    runs exactly one "phase", which is precisely the barrier semantics
//    CUDA guarantees.
//
// Kernel bodies report the work they perform (FLOPs, global/shared memory
// traffic, atomics) through the context; KernelStats::finalize() turns the
// totals into a modeled Tesla-K20c execution time (see metrics.hpp).
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "cudasim/device.hpp"
#include "cudasim/error.hpp"
#include "cudasim/metrics.hpp"
#include "obs/trace.hpp"

namespace cudasim {

/// Per-thread view for flat (barrier-free) kernels.
class ThreadCtx {
 public:
  unsigned block_idx = 0;
  unsigned thread_idx = 0;
  unsigned block_dim = 0;
  unsigned grid_dim = 0;

  /// 64-bit flat thread id: blockIdx * blockDim + threadIdx. 64-bit
  /// end-to-end so large grids (> 2^32 logical threads) never silently
  /// truncate before kernels scale the id by a batch stride.
  [[nodiscard]] std::uint64_t global_id() const noexcept {
    return static_cast<std::uint64_t>(block_idx) * block_dim + thread_idx;
  }

  void count_flops(std::uint64_t n) noexcept { counters_->flops += n; }
  void count_global_bytes(std::uint64_t n) noexcept {
    counters_->global_bytes += n;
  }
  void count_shared_bytes(std::uint64_t n) noexcept {
    counters_->shared_bytes += n;
  }
  void count_atomic(std::uint64_t n = 1) noexcept {
    counters_->atomic_ops += n;
  }

  BlockCounters* counters_ = nullptr;  // set by the launcher
};

/// Coroutine type returned by cooperative kernel bodies.
class KernelTask {
 public:
  struct promise_type {
    KernelTask get_return_object() {
      return KernelTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
    std::exception_ptr exception;
  };

  using Handle = std::coroutine_handle<promise_type>;

  explicit KernelTask(Handle h) noexcept : handle_(h) {}
  KernelTask(KernelTask&& o) noexcept
      : handle_(std::exchange(o.handle_, nullptr)) {}
  KernelTask& operator=(KernelTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  KernelTask(const KernelTask&) = delete;
  KernelTask& operator=(const KernelTask&) = delete;
  ~KernelTask() { destroy(); }

  [[nodiscard]] Handle handle() const noexcept { return handle_; }

 private:
  void destroy() noexcept {
    if (handle_) handle_.destroy();
    handle_ = nullptr;
  }
  Handle handle_;
};

/// Awaiter returned by CoopCtx::sync(); suspension = barrier arrival.
struct BarrierAwaiter {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

/// Per-thread view for cooperative kernels: adds sync() and block shared
/// memory (the analogue of `extern __shared__`).
class CoopCtx : public ThreadCtx {
 public:
  /// __syncthreads(): co_await ctx.sync();
  [[nodiscard]] BarrierAwaiter sync() noexcept {
    if (thread_idx == 0) ++counters_->barriers;  // one barrier per block
    return {};
  }

  /// The block's shared-memory arena; kernel code carves typed arrays out
  /// of it, exactly like CUDA dynamic shared memory.
  [[nodiscard]] std::span<std::byte> shared_mem() const noexcept {
    return shared_;
  }

  /// Carve a typed array of `count` elements at byte offset `offset`.
  template <typename T>
  [[nodiscard]] std::span<T> shared_array(std::size_t offset,
                                          std::size_t count) const {
    if (offset + count * sizeof(T) > shared_.size()) {
      throw LaunchError("shared_array: request exceeds block shared memory");
    }
    return {reinterpret_cast<T*>(shared_.data() + offset), count};
  }

  std::span<std::byte> shared_{};  // set by the launcher
};

namespace detail {

inline void validate_launch(const Device& dev, unsigned grid_dim,
                            unsigned block_dim, std::size_t shared_bytes) {
  if (grid_dim == 0 || block_dim == 0) {
    throw LaunchError("kernel launch with empty grid or block");
  }
  if (block_dim > dev.config().max_threads_per_block) {
    throw LaunchError("block size exceeds max_threads_per_block");
  }
  if (shared_bytes > dev.config().shared_mem_per_block) {
    throw LaunchError("shared memory request exceeds per-block limit");
  }
}

}  // namespace detail

/// Executes a flat kernel synchronously on the calling thread + executor
/// pool. `body` is invoked once per logical thread: body(ThreadCtx&).
template <typename F>
KernelStats run_flat_kernel(Device& dev, unsigned grid_dim, unsigned block_dim,
                            F&& body) {
  detail::validate_launch(dev, grid_dim, block_dim, 0);
  // Scripted fault gate: a TransientKernelFault or DeviceLost fires here,
  // before any block executes, so a failed launch never does partial work.
  dev.fault_on_kernel_launch();
  TRACE_SPAN("kernel", "flat d%u %ux%u", dev.id(), grid_dim, block_dim);
  hdbscan::WallTimer wall;

  KernelStats stats;
  stats.blocks = grid_dim;
  stats.threads = static_cast<std::uint64_t>(grid_dim) * block_dim;

  std::mutex merge_mutex;
  dev.executor().parallel_for(
      0, grid_dim,
      [&](std::size_t b) {
        BlockCounters block_work;
        ThreadCtx ctx;
        ctx.block_idx = static_cast<unsigned>(b);
        ctx.block_dim = block_dim;
        ctx.grid_dim = grid_dim;
        ctx.counters_ = &block_work;
        for (unsigned t = 0; t < block_dim; ++t) {
          ctx.thread_idx = t;
          body(ctx);
        }
        std::lock_guard lock(merge_mutex);
        stats.work.merge(block_work);
      },
      /*grain=*/1);

  stats.wall_seconds = wall.seconds();
  stats.finalize(dev.config());
  hdbscan::obs::modeled_advance(stats.modeled_seconds);
  dev.record_kernel(stats);
  return stats;
}

/// Executes a cooperative kernel: `gen(ctx)` must be a coroutine returning
/// KernelTask that may `co_await ctx.sync()`. All threads of a block are
/// driven in lockstep phases between barriers.
template <typename G>
KernelStats run_coop_kernel(Device& dev, unsigned grid_dim, unsigned block_dim,
                            std::size_t shared_bytes, G&& gen) {
  detail::validate_launch(dev, grid_dim, block_dim, shared_bytes);
  dev.fault_on_kernel_launch();
  TRACE_SPAN("kernel", "coop d%u %ux%u", dev.id(), grid_dim, block_dim);
  hdbscan::WallTimer wall;

  KernelStats stats;
  stats.blocks = grid_dim;
  stats.threads = static_cast<std::uint64_t>(grid_dim) * block_dim;

  std::mutex merge_mutex;
  dev.executor().parallel_for(
      0, grid_dim,
      [&](std::size_t b) {
        BlockCounters block_work;
        std::vector<std::byte> shared(shared_bytes);
        // Contexts must have stable addresses: coroutine frames hold
        // references to them across suspensions.
        std::vector<CoopCtx> ctxs(block_dim);
        std::vector<KernelTask> threads;
        threads.reserve(block_dim);
        for (unsigned t = 0; t < block_dim; ++t) {
          CoopCtx& ctx = ctxs[t];
          ctx.block_idx = static_cast<unsigned>(b);
          ctx.thread_idx = t;
          ctx.block_dim = block_dim;
          ctx.grid_dim = grid_dim;
          ctx.counters_ = &block_work;
          ctx.shared_ = std::span<std::byte>(shared);
          threads.push_back(gen(ctx));
        }
        // Round-robin lockstep: each round resumes every live thread until
        // it either finishes or reaches the next barrier.
        bool any_alive = true;
        while (any_alive) {
          any_alive = false;
          for (auto& task : threads) {
            auto h = task.handle();
            if (!h.done()) {
              h.resume();
              if (h.promise().exception) {
                std::rethrow_exception(h.promise().exception);
              }
              if (!h.done()) any_alive = true;
            }
          }
        }
        std::lock_guard lock(merge_mutex);
        stats.work.merge(block_work);
      },
      /*grain=*/1);

  stats.wall_seconds = wall.seconds();
  stats.finalize(dev.config());
  hdbscan::obs::modeled_advance(stats.modeled_seconds);
  dev.record_kernel(stats);
  return stats;
}

}  // namespace cudasim
