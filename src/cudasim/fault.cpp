#include "cudasim/fault.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"

namespace cudasim {

namespace {

bool contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

FaultPlan FaultPlan::randomized(std::uint64_t seed) {
  hdbscan::SplitMix64 rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  // Independent gates so plans stack hazards the way real incidents do;
  // ordinals are small enough to land inside a modest build.
  if (rng.next() % 100 < 55) {
    plan.transient_launches.push_back(1 + rng.next() % 40);
  }
  if (rng.next() % 100 < 40) {
    plan.oom_allocs.push_back(1 + rng.next() % 24);
  }
  if (rng.next() % 100 < 40) {
    plan.degrade_from_transfer = 1 + rng.next() % 20;
    plan.degrade_factor = 2.0 + static_cast<double>(rng.next() % 7);
  }
  if (rng.next() % 100 < 35) {
    plan.lost_at_op = 10 + rng.next() % 300;
  }
  if (plan.empty()) {  // a chaos plan with no chaos tests nothing
    plan.transient_launches.push_back(1 + rng.next() % 20);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out = "fault plan (seed " + std::to_string(seed) + "):";
  if (empty()) return out + " none";
  for (const std::uint64_t a : oom_allocs) {
    out += " oom@alloc" + std::to_string(a);
  }
  for (const std::uint64_t l : transient_launches) {
    out += " transient@launch" + std::to_string(l);
  }
  if (degrade_from_transfer != 0) {
    char factor[32];
    std::snprintf(factor, sizeof(factor), "%.3g", degrade_factor);
    out += " pcie/" + std::string(factor) + "@xfer" +
           std::to_string(degrade_from_transfer);
  }
  if (lost_at_op != 0) {
    out += " lost@op" + std::to_string(lost_at_op);
  }
  return out;
}

bool FaultInjector::advance_op_locked() {
  ++ops_;
  if (counters_.lost) {
    ++counters_.refused_ops;
    return true;
  }
  if (plan_.lost_at_op != 0 && ops_ >= plan_.lost_at_op) {
    counters_.lost = true;
    return true;
  }
  return false;
}

FaultFire FaultInjector::on_alloc() {
  std::lock_guard lock(mutex_);
  if (advance_op_locked()) return FaultFire::kDeviceLost;
  ++allocs_;
  if (contains(plan_.oom_allocs, allocs_)) {
    ++counters_.oom_fired;
    return FaultFire::kOutOfMemory;
  }
  return FaultFire::kNone;
}

FaultFire FaultInjector::on_kernel_launch() {
  std::lock_guard lock(mutex_);
  if (advance_op_locked()) return FaultFire::kDeviceLost;
  ++launches_;
  if (contains(plan_.transient_launches, launches_)) {
    ++counters_.transient_fired;
    return FaultFire::kTransientKernel;
  }
  return FaultFire::kNone;
}

FaultFire FaultInjector::on_transfer(double* slowdown) {
  std::lock_guard lock(mutex_);
  *slowdown = 1.0;
  if (advance_op_locked()) return FaultFire::kDeviceLost;
  ++transfers_;
  if (plan_.degrade_from_transfer != 0 &&
      transfers_ >= plan_.degrade_from_transfer && plan_.degrade_factor > 1.0) {
    *slowdown = plan_.degrade_factor;
    ++counters_.degraded_transfers;
  }
  return FaultFire::kNone;
}

FaultFire FaultInjector::on_op() {
  std::lock_guard lock(mutex_);
  return advance_op_locked() ? FaultFire::kDeviceLost : FaultFire::kNone;
}

bool FaultInjector::lost() const {
  std::lock_guard lock(mutex_);
  return counters_.lost;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::uint64_t FaultInjector::ops() const {
  std::lock_guard lock(mutex_);
  return ops_;
}

}  // namespace cudasim
