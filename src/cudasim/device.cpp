#include "cudasim/device.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#include "common/timer.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/fault.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace cudasim {

namespace {

[[noreturn]] void throw_device_lost(std::uint32_t device_id) {
  // Device loss is the flight recorder's marquee trigger: note which
  // request was on the device and dump a post-mortem before unwinding.
  hdbscan::obs::FlightRecorder& fr = hdbscan::obs::FlightRecorder::global();
  fr.note("device", hdbscan::current_request_context().request_id,
          "device %u lost", device_id);
  fr.dump("device_lost");
  throw DeviceLost("device lost: a scripted device-loss fault fired; all "
                   "subsequent operations on this device fail");
}

[[nodiscard]] std::uint32_t next_device_id() noexcept {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Device::Device(DeviceConfig config, SimulationOptions options)
    : config_(config), options_(options), id_(next_device_id()) {
  executor_ = std::make_unique<hdbscan::ThreadPool>(options_.executor_threads);
  pool_ = std::make_unique<BufferPool>(*this);
}

Device::~Device() = default;

void Device::fault_gate_alloc(std::size_t bytes) {
  FaultInjector* fault = options_.fault.get();
  if (fault == nullptr) return;
  switch (fault->on_alloc()) {
    case FaultFire::kNone:
      return;
    case FaultFire::kOutOfMemory: {
      TRACE_INSTANT("fault", "oom d%u", id_);
      std::lock_guard lock(mutex_);
      ++metrics_.injected_oom_faults;
      throw DeviceOutOfMemory(bytes, used_bytes_, config_.global_mem_bytes);
    }
    case FaultFire::kDeviceLost:
    default: {
      TRACE_INSTANT("fault", "device_lost d%u", id_);
      {
        std::lock_guard lock(mutex_);
        metrics_.device_lost = true;
        ++metrics_.refused_ops;
      }
      throw_device_lost(id_);
    }
  }
}

double Device::fault_gate_transfer() {
  FaultInjector* fault = options_.fault.get();
  if (fault == nullptr) return 1.0;
  double slowdown = 1.0;
  const FaultFire fire = fault->on_transfer(&slowdown);
  if (fire == FaultFire::kDeviceLost) {
    TRACE_INSTANT("fault", "device_lost d%u", id_);
    {
      std::lock_guard lock(mutex_);
      metrics_.device_lost = true;
      ++metrics_.refused_ops;
    }
    throw_device_lost(id_);
  }
  if (slowdown > 1.0) {
    TRACE_INSTANT("fault", "pcie_degraded d%u x%.1f", id_, slowdown);
    std::lock_guard lock(mutex_);
    ++metrics_.degraded_transfers;
  }
  return slowdown;
}

void Device::fault_on_kernel_launch() {
  FaultInjector* fault = options_.fault.get();
  if (fault == nullptr) return;
  switch (fault->on_kernel_launch()) {
    case FaultFire::kNone:
      return;
    case FaultFire::kTransientKernel: {
      TRACE_INSTANT("fault", "transient_kernel d%u", id_);
      {
        std::lock_guard lock(mutex_);
        ++metrics_.injected_transient_faults;
      }
      throw TransientKernelFault(
          "transient kernel fault: scripted launch failure; the launch did "
          "no work and may be retried");
    }
    case FaultFire::kDeviceLost:
    default: {
      {
        std::lock_guard lock(mutex_);
        metrics_.device_lost = true;
        ++metrics_.refused_ops;
      }
      throw_device_lost(id_);
    }
  }
}

void Device::fault_on_device_op() {
  FaultInjector* fault = options_.fault.get();
  if (fault == nullptr) return;
  if (fault->on_op() == FaultFire::kDeviceLost) {
    TRACE_INSTANT("fault", "device_lost d%u", id_);
    {
      std::lock_guard lock(mutex_);
      metrics_.device_lost = true;
      ++metrics_.refused_ops;
    }
    throw_device_lost(id_);
  }
}

bool Device::lost() const noexcept {
  const FaultInjector* fault = options_.fault.get();
  return fault != nullptr && fault->lost();
}

void* Device::allocate_global(std::size_t bytes) {
  TRACE_SPAN("alloc", "malloc d%u %zuB", id_, bytes);
  fault_gate_alloc(bytes);
  {
    std::lock_guard lock(mutex_);
    if (used_bytes_ + bytes > config_.global_mem_bytes) {
      throw DeviceOutOfMemory(bytes, used_bytes_, config_.global_mem_bytes);
    }
    used_bytes_ += bytes;
    metrics_.current_mem_bytes = used_bytes_;
    if (used_bytes_ > metrics_.peak_mem_bytes) {
      metrics_.peak_mem_bytes = used_bytes_;
    }
  }
  // 64-byte alignment mirrors cudaMalloc's strong alignment guarantees.
  // The reservation above must unwind if the backing host allocation
  // fails, or capacity accounting would leak the phantom bytes forever.
  try {
    return ::operator new(bytes == 0 ? 1 : bytes, std::align_val_t{64});
  } catch (...) {
    std::lock_guard lock(mutex_);
    used_bytes_ -= bytes;
    metrics_.current_mem_bytes = used_bytes_;
    throw;
  }
}

void Device::free_global(void* p, std::size_t bytes) noexcept {
  ::operator delete(p, std::align_val_t{64});
  std::lock_guard lock(mutex_);
  used_bytes_ -= bytes;
  metrics_.current_mem_bytes = used_bytes_;
}

void* Device::allocate_pinned(std::size_t bytes) {
  TRACE_SPAN("alloc", "pinned d%u %zuB", id_, bytes);
  fault_on_device_op();
  const double model_s = config_.pinned_alloc_base_us * 1e-6 +
                         static_cast<double>(bytes) /
                             (config_.pinned_alloc_gbps * 1e9);
  hdbscan::WallTimer t;
  void* p = ::operator new(bytes == 0 ? 1 : bytes, std::align_val_t{64});
  throttle_sleep(model_s, t.seconds(), options_.throttle_pinned_alloc);
  hdbscan::obs::modeled_advance(model_s);
  std::lock_guard lock(mutex_);
  metrics_.pinned_alloc_seconds += model_s;
  return p;
}

void Device::free_pinned(void* p, std::size_t /*bytes*/) noexcept {
  ::operator delete(p, std::align_val_t{64});
}

std::size_t Device::used_global_bytes() const noexcept {
  std::lock_guard lock(mutex_);
  return used_bytes_;
}

std::size_t Device::free_global_bytes() const noexcept {
  std::lock_guard lock(mutex_);
  return config_.global_mem_bytes - used_bytes_;
}

DeviceMetrics Device::metrics() const {
  std::lock_guard lock(mutex_);
  return metrics_;
}

void Device::reset_metrics() {
  std::lock_guard lock(mutex_);
  const std::size_t current = metrics_.current_mem_bytes;
  const bool was_lost = metrics_.device_lost;  // loss is permanent
  metrics_ = DeviceMetrics{};
  metrics_.current_mem_bytes = current;
  metrics_.peak_mem_bytes = current;
  metrics_.device_lost = was_lost;
}

void Device::record_kernel(const KernelStats& stats) {
  std::lock_guard lock(mutex_);
  ++metrics_.kernel_launches;
  metrics_.kernel_modeled_seconds += stats.modeled_seconds;
  metrics_.kernel_wall_seconds += stats.wall_seconds;
}

void Device::record_transfer(std::size_t bytes, bool to_device,
                             double seconds) {
  std::lock_guard lock(mutex_);
  if (to_device) {
    metrics_.h2d_bytes += bytes;
  } else {
    metrics_.d2h_bytes += bytes;
  }
  metrics_.transfer_seconds += seconds;
}

void Device::record_sort(double modeled_seconds) {
  std::lock_guard lock(mutex_);
  metrics_.sort_seconds += modeled_seconds;
}

void Device::record_scan(double modeled_seconds) {
  std::lock_guard lock(mutex_);
  metrics_.scan_seconds += modeled_seconds;
}

void Device::record_pool(bool pinned, bool hit) {
  std::lock_guard lock(mutex_);
  if (pinned) {
    hit ? ++metrics_.pool_pinned_hits : ++metrics_.pool_pinned_misses;
  } else {
    hit ? ++metrics_.pool_device_hits : ++metrics_.pool_device_misses;
  }
}

void Device::record_pool_trim(std::size_t bytes) {
  std::lock_guard lock(mutex_);
  metrics_.pool_trim_bytes += bytes;
}

void Device::blocking_transfer(void* dst, const void* src, std::size_t bytes,
                               bool to_device, bool pinned_host) {
  TRACE_SPAN("transfer", "%s d%u %zuB", to_device ? "h2d" : "d2h", id_,
             bytes);
  // Throws DeviceLost once the device is gone; under injected PCIe
  // degradation the effective bandwidth is divided by the slowdown.
  const double slowdown = fault_gate_transfer();
  const double bw_gbps =
      (pinned_host ? config_.pcie_pinned_gbps : config_.pcie_pageable_gbps) /
      slowdown;
  const double model_s = config_.pcie_latency_us * 1e-6 +
                         static_cast<double>(bytes) / (bw_gbps * 1e9);
  hdbscan::WallTimer t;
  std::memcpy(dst, src, bytes);
  throttle_sleep(model_s, t.seconds(), options_.throttle_transfers);
  hdbscan::obs::modeled_advance(model_s);
  record_transfer(bytes, to_device, model_s);
}

void Device::throttle_sleep(double seconds, double already_spent,
                            bool enabled) const {
  if (!enabled) return;
  const double remaining = seconds - already_spent;
  if (remaining > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
  }
}

}  // namespace cudasim
