// RAII buffers for simulated device global memory and pinned host memory.
//
// Discipline: host code moves data in and out of DeviceBuffers only through
// Stream::memcpy_* (which applies the PCIe model). DeviceBuffer::device_data
// is the "device pointer" handed to kernels. Tests may use
// unsafe_host_view() to assert on device contents directly.
#pragma once

#include <cstddef>
#include <span>
#include <utility>

#include "cudasim/device.hpp"

namespace cudasim {

template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& device, std::size_t count)
      : device_(&device), count_(count) {
    data_ = static_cast<T*>(device_->allocate_global(bytes()));
  }

  DeviceBuffer(DeviceBuffer&& o) noexcept
      : device_(std::exchange(o.device_, nullptr)),
        data_(std::exchange(o.data_, nullptr)),
        count_(std::exchange(o.count_, 0)) {}

  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      device_ = std::exchange(o.device_, nullptr);
      data_ = std::exchange(o.data_, nullptr);
      count_ = std::exchange(o.count_, 0);
    }
    return *this;
  }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { release(); }

  [[nodiscard]] T* device_data() noexcept { return data_; }
  [[nodiscard]] const T* device_data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return count_ * sizeof(T); }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] Device* device() const noexcept { return device_; }

  /// Direct host access to device memory — bypasses the transfer model.
  /// For tests and in-kernel use only.
  [[nodiscard]] std::span<T> unsafe_host_view() noexcept {
    return {data_, count_};
  }
  [[nodiscard]] std::span<const T> unsafe_host_view() const noexcept {
    return {data_, count_};
  }

 private:
  void release() noexcept {
    if (device_ != nullptr && data_ != nullptr) {
      device_->free_global(data_, bytes());
    }
    device_ = nullptr;
    data_ = nullptr;
    count_ = 0;
  }

  Device* device_ = nullptr;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

/// Page-locked host staging buffer. Allocation pays the modeled page-lock
/// cost; transfers from/to it run at the pinned PCIe rate.
template <typename T>
class PinnedBuffer {
 public:
  PinnedBuffer() = default;

  PinnedBuffer(Device& device, std::size_t count)
      : device_(&device), count_(count) {
    data_ = static_cast<T*>(device_->allocate_pinned(bytes()));
  }

  PinnedBuffer(PinnedBuffer&& o) noexcept
      : device_(std::exchange(o.device_, nullptr)),
        data_(std::exchange(o.data_, nullptr)),
        count_(std::exchange(o.count_, 0)) {}

  PinnedBuffer& operator=(PinnedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      device_ = std::exchange(o.device_, nullptr);
      data_ = std::exchange(o.data_, nullptr);
      count_ = std::exchange(o.count_, 0);
    }
    return *this;
  }

  PinnedBuffer(const PinnedBuffer&) = delete;
  PinnedBuffer& operator=(const PinnedBuffer&) = delete;

  ~PinnedBuffer() { release(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return count_ * sizeof(T); }
  [[nodiscard]] std::span<T> span() noexcept { return {data_, count_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, count_};
  }

 private:
  void release() noexcept {
    if (device_ != nullptr && data_ != nullptr) {
      device_->free_pinned(data_, bytes());
    }
    device_ = nullptr;
    data_ = nullptr;
    count_ = 0;
  }

  Device* device_ = nullptr;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace cudasim
