#include "cudasim/buffer_pool.hpp"

#include "cudasim/error.hpp"

namespace cudasim {

BufferPool::Checkout BufferPool::acquire(std::size_t bytes, bool pinned) {
  const std::size_t bucket = bucket_for(bytes);
  {
    std::lock_guard lock(mutex_);
    auto& lists = pinned ? free_pinned_ : free_device_;
    auto it = lists.find(bucket);
    if (it != lists.end() && !it->second.empty()) {
      void* p = it->second.back();
      it->second.pop_back();
      device_->record_pool(pinned, /*hit=*/true);
      return Checkout{p, bucket, pinned, /*fresh=*/false};
    }
  }
  device_->record_pool(pinned, /*hit=*/false);
  if (pinned) {
    return Checkout{device_->allocate_pinned(bucket), bucket, true,
                    /*fresh=*/true};
  }
  try {
    return Checkout{device_->allocate_global(bucket), bucket, false,
                    /*fresh=*/true};
  } catch (const DeviceOutOfMemory&) {
    // Cached blocks still hold capacity; drop them and retry once. A cold
    // pool has nothing to give back — rethrow so scripted OOM faults reach
    // the builder's degradation ladder untouched.
    if (trim() == 0) throw;
    return Checkout{device_->allocate_global(bucket), bucket, false,
                    /*fresh=*/true};
  }
}

void BufferPool::release(Checkout& c) noexcept {
  if (c.data == nullptr) return;
  if (device_->lost()) {
    // Nothing should keep a dead device's capacity reserved; capacity
    // accounting still works after loss, so free outright.
    if (c.pinned) {
      device_->free_pinned(c.data, c.bucket_bytes);
    } else {
      device_->free_global(c.data, c.bucket_bytes);
    }
  } else {
    std::lock_guard lock(mutex_);
    auto& lists = c.pinned ? free_pinned_ : free_device_;
    lists[c.bucket_bytes].push_back(c.data);
  }
  c = Checkout{};
}

std::size_t BufferPool::trim() noexcept {
  std::map<std::size_t, std::vector<void*>> victims;
  {
    std::lock_guard lock(mutex_);
    victims.swap(free_device_);
  }
  std::size_t freed = 0;
  for (auto& [bucket, blocks] : victims) {
    for (void* p : blocks) {
      device_->free_global(p, bucket);
      freed += bucket;
    }
  }
  if (freed > 0) device_->record_pool_trim(freed);
  return freed;
}

std::size_t BufferPool::cached_device_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [bucket, blocks] : free_device_) {
    total += bucket * blocks.size();
  }
  return total;
}

std::size_t BufferPool::cached_pinned_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [bucket, blocks] : free_pinned_) {
    total += bucket * blocks.size();
  }
  return total;
}

void BufferPool::free_all() noexcept {
  std::lock_guard lock(mutex_);
  for (auto& [bucket, blocks] : free_device_) {
    for (void* p : blocks) device_->free_global(p, bucket);
  }
  free_device_.clear();
  for (auto& [bucket, blocks] : free_pinned_) {
    for (void* p : blocks) device_->free_pinned(p, bucket);
  }
  free_pinned_.clear();
}

}  // namespace cudasim
