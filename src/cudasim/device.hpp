// The simulated GPU device: memory accounting, executor pool, metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/thread_pool.hpp"
#include "cudasim/config.hpp"
#include "cudasim/error.hpp"
#include "cudasim/metrics.hpp"

namespace cudasim {

class BufferPool;

/// A simulated CUDA device. Thread-safe. Buffers, streams, and kernel
/// launches all reference a Device; it must outlive them.
class Device {
 public:
  explicit Device(DeviceConfig config = {}, SimulationOptions options = {});
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceConfig& config() const noexcept { return config_; }
  [[nodiscard]] const SimulationOptions& options() const noexcept {
    return options_;
  }

  /// Process-unique ordinal (creation order), used as the trace process id
  /// (obs::device_pid(id())) so every device owns one timeline process.
  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  /// Global-memory allocation with capacity accounting. Throws
  /// DeviceOutOfMemory when the request would exceed capacity.
  [[nodiscard]] void* allocate_global(std::size_t bytes);
  void free_global(void* p, std::size_t bytes) noexcept;

  /// Pinned (page-locked) host allocation; models the paper's observation
  /// that pinning is expensive by sleeping the modeled page-lock time.
  [[nodiscard]] void* allocate_pinned(std::size_t bytes);
  void free_pinned(void* p, std::size_t bytes) noexcept;

  [[nodiscard]] std::size_t used_global_bytes() const noexcept;
  [[nodiscard]] std::size_t free_global_bytes() const noexcept;

  /// Pool that executes kernel thread blocks ("the SMs").
  [[nodiscard]] hdbscan::ThreadPool& executor() noexcept { return *executor_; }

  /// Per-device buffer pool for pinned staging and device scratch (see
  /// cudasim/buffer_pool.hpp). Owned by the device so cached blocks share
  /// its lifetime and capacity accounting.
  [[nodiscard]] BufferPool& pool() noexcept { return *pool_; }

  [[nodiscard]] DeviceMetrics metrics() const;
  void reset_metrics();

  /// True once an injected device-loss fault fired: the device refuses all
  /// further work (every op throws DeviceLost) until destroyed.
  [[nodiscard]] bool lost() const noexcept;

  // --- fault-injection gates (no-ops without SimulationOptions::fault) ---
  /// Called by the kernel engine before a launch executes; throws
  /// TransientKernelFault or DeviceLost when the plan says so.
  void fault_on_kernel_launch();
  /// Called by on-device primitives (sort/scan) and pinned allocation;
  /// throws DeviceLost once the device is gone.
  void fault_on_device_op();

  // --- internal accounting hooks (used by Stream / kernel engine / sort) ---
  void record_kernel(const KernelStats& stats);
  void record_transfer(std::size_t bytes, bool to_device, double seconds);
  void record_sort(double modeled_seconds);
  void record_scan(double modeled_seconds);
  void record_pool(bool pinned, bool hit);
  void record_pool_trim(std::size_t bytes);

  /// Sleep `seconds` minus `already_spent` when throttling is enabled.
  void throttle_sleep(double seconds, double already_spent,
                      bool enabled) const;

  /// Synchronous host<->device copy applying the PCIe model on the calling
  /// thread. Streams use this internally; host code running *inside* a
  /// stream operation may call it directly to keep stream ordering.
  void blocking_transfer(void* dst, const void* src, std::size_t bytes,
                         bool to_device, bool pinned_host);

 private:
  /// Consults the injector for an allocation; throws on a scripted fault.
  void fault_gate_alloc(std::size_t bytes);
  /// Consults the injector for a transfer; returns the bandwidth slowdown
  /// factor (>= 1.0) and throws once the device is lost.
  [[nodiscard]] double fault_gate_transfer();

  DeviceConfig config_;
  SimulationOptions options_;
  std::uint32_t id_;
  std::unique_ptr<hdbscan::ThreadPool> executor_;

  mutable std::mutex mutex_;
  std::size_t used_bytes_ = 0;
  DeviceMetrics metrics_;
  // Declared last: destroyed first, returning cached blocks while the
  // accounting members above are still alive.
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace cudasim
