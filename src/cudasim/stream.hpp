// CUDA-style streams and events.
//
// A Stream is an in-order asynchronous work queue backed by a dedicated
// host thread (operations from different streams overlap; operations within
// one stream never do). Supported operations: async host<->device copies
// (throttled by the PCIe model), kernel launches, on-device sorts, host
// callbacks, and event record/wait.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "cudasim/buffer.hpp"
#include "cudasim/device.hpp"
#include "cudasim/kernel.hpp"

namespace cudasim {

/// Whether the host side of a transfer is page-locked; pinned transfers
/// run at the faster PCIe rate (paper §VI).
enum class HostMem { Pageable, Pinned };

/// Cross-stream synchronization point, equivalent to cudaEvent_t. Records
/// its completion timestamp, so pairs of events measure elapsed stream
/// time the way cudaEventElapsedTime does.
class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  [[nodiscard]] bool query() const {
    std::lock_guard lock(state_->mutex);
    return state_->done;
  }

  void wait() const {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
  }

  /// Seconds between two completed events (end - start); throws SimError
  /// when either has not completed yet (cudaErrorNotReady).
  [[nodiscard]] static double elapsed_seconds(const Event& start,
                                              const Event& end) {
    const auto t0 = start.timestamp();
    const auto t1 = end.timestamp();
    return std::chrono::duration<double>(t1 - t0).count();
  }

 private:
  friend class Stream;
  using Clock = std::chrono::steady_clock;

  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Clock::time_point when{};
  };

  [[nodiscard]] Clock::time_point timestamp() const {
    std::lock_guard lock(state_->mutex);
    if (!state_->done) throw SimError("Event: not ready (no timestamp yet)");
    return state_->when;
  }

  void signal() const {
    {
      std::lock_guard lock(state_->mutex);
      state_->done = true;
      state_->when = Clock::now();
    }
    state_->cv.notify_all();
  }

  std::shared_ptr<State> state_;
};

class Stream {
 public:
  explicit Stream(Device& device);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  [[nodiscard]] Device& device() noexcept { return device_; }

  /// Async host -> device copy of `count` elements.
  template <typename T>
  void memcpy_to_device(DeviceBuffer<T>& dst, const T* src, std::size_t count,
                        HostMem host_kind = HostMem::Pageable) {
    T* dst_p = dst.device_data();
    enqueue([this, dst_p, src, count, host_kind] {
      do_transfer(dst_p, src, count * sizeof(T), /*to_device=*/true,
                  host_kind);
    });
  }

  /// Async device -> host copy of `count` elements.
  template <typename T>
  void memcpy_to_host(T* dst, const DeviceBuffer<T>& src, std::size_t count,
                      HostMem host_kind = HostMem::Pageable) {
    const T* src_p = src.device_data();
    enqueue([this, dst, src_p, count, host_kind] {
      do_transfer(dst, src_p, count * sizeof(T), /*to_device=*/false,
                  host_kind);
    });
  }

  /// Async flat kernel launch; stats (if non-null) are valid after the
  /// launch completes (synchronize() or a recorded event).
  template <typename F>
  void launch(unsigned grid_dim, unsigned block_dim, F body,
              KernelStats* stats_out = nullptr) {
    enqueue([this, grid_dim, block_dim, body = std::move(body), stats_out] {
      KernelStats s = run_flat_kernel(device_, grid_dim, block_dim, body);
      if (stats_out != nullptr) *stats_out = s;
    });
  }

  /// Async cooperative kernel launch (threads may co_await ctx.sync()).
  template <typename G>
  void launch_coop(unsigned grid_dim, unsigned block_dim,
                   std::size_t shared_bytes, G gen,
                   KernelStats* stats_out = nullptr) {
    enqueue([this, grid_dim, block_dim, shared_bytes, gen = std::move(gen),
             stats_out] {
      KernelStats s =
          run_coop_kernel(device_, grid_dim, block_dim, shared_bytes, gen);
      if (stats_out != nullptr) *stats_out = s;
    });
  }

  /// Run an arbitrary host function in stream order (cudaLaunchHostFunc).
  void host_fn(std::function<void()> fn) { enqueue(std::move(fn)); }

  /// Record an event after all previously enqueued work.
  void record(Event event) {
    enqueue([event] { event.signal(); });
  }

  /// Make this stream wait for an event recorded on another stream.
  void wait(Event event) {
    enqueue([event] { event.wait(); });
  }

  /// Block the calling thread until every enqueued operation has run.
  /// If any enqueued op threw, the first such exception is rethrown here
  /// (then cleared) — async failures surface at the sync point, as in CUDA.
  void synchronize();

 private:
  void enqueue(std::function<void()> op);
  void worker_loop();
  void do_transfer(void* dst, const void* src, std::size_t bytes,
                   bool to_device, HostMem host_kind);

  Device& device_;
  std::thread worker_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  bool busy_ = false;
  bool stopping_ = false;
  std::exception_ptr error_;  ///< first async op failure, kept until sync
};

}  // namespace cudasim
