// Simulated device configuration.
//
// Defaults model the NVIDIA Tesla K20c used in the paper: 13 SMX units,
// 2496 CUDA cores at 706 MHz (~3.5 TFLOP/s single precision), 5 GB GDDR5 at
// 208 GB/s, attached over PCIe 2.0 x16 (~6 GB/s effective with pinned host
// memory, roughly half that with pageable memory).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace cudasim {

class FaultInjector;  // fault.hpp

struct DeviceConfig {
  // --- capacity ---
  std::size_t global_mem_bytes = 5ull << 30;        ///< 5 GB GDDR5
  std::size_t shared_mem_per_block = 48ull << 10;   ///< 48 KiB
  unsigned max_threads_per_block = 1024;

  // --- performance model (kernel cost accounting) ---
  int sm_count = 13;
  int cores_per_sm = 192;
  double clock_ghz = 0.706;
  double flops_per_core_per_cycle = 2.0;  ///< FMA
  double mem_bandwidth_gbps = 208.0;      ///< global memory, GB/s
  double shared_bandwidth_gbps = 1300.0;  ///< aggregate shared memory, GB/s
  double atomic_ns = 1.1;                 ///< serialized global atomic op
  double block_launch_us = 0.45;          ///< per-block scheduling overhead
  double barrier_us = 0.08;               ///< per-block barrier cost
  double kernel_launch_us = 8.0;          ///< fixed per-launch overhead

  // --- host link model (transfers are throttled to these rates) ---
  double pcie_pinned_gbps = 6.0;
  double pcie_pageable_gbps = 3.0;
  double pcie_latency_us = 12.0;

  // --- pinned host allocation model (paper: "expensive pinned memory
  //     allocation" motivates the variable buffer-size policy) ---
  double pinned_alloc_base_us = 80.0;
  double pinned_alloc_gbps = 8.0;  ///< page-locking throughput

  // --- reference host ---
  /// Cores of the host driving the device (paper era: dual Xeon E5-2620).
  /// Host-side table work that parallelizes across rows (e.g. the
  /// half-table expansion) is charged at its critical path over this many
  /// workers, matching how per-stream appends are assumed to run on their
  /// own cores.
  int host_cores = 12;

  /// Peak single-precision FLOP/s implied by the model.
  [[nodiscard]] double peak_flops() const noexcept {
    return static_cast<double>(sm_count) * cores_per_sm * clock_ghz * 1e9 *
           flops_per_core_per_cycle;
  }
};

/// Knobs controlling how faithfully the simulator *executes* (as opposed to
/// accounts). Throttling makes wall-clock overlap experiments meaningful;
/// disabling it makes unit tests fast.
struct SimulationOptions {
  bool throttle_transfers = true;    ///< sleep to modeled PCIe time
  bool throttle_pinned_alloc = true; ///< sleep to modeled page-lock time
  std::size_t executor_threads = 0;  ///< 0 = hardware concurrency
  /// Optional deterministic fault injection (fault.hpp). Shared so tests
  /// and chaos harnesses keep a handle for inspecting fired counters.
  std::shared_ptr<FaultInjector> fault;
};

}  // namespace cudasim
