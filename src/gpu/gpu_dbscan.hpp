// In-GPU DBSCAN baseline (the approach family the paper contrasts with:
// CUDA-DClust, G-DBSCAN, Mr. Scan — cluster ON the device, then resolve).
//
// Pipeline (everything device-resident until the final label transfer):
//   1. core kernel      — thread per point counts |N_eps| against minpts;
//   2. seed kernel      — every core point's label is initialized to its id;
//   3. propagation      — iterated min-label kernels over core-core edges
//                         (Shiloach-Vishkin-style component labeling; this
//                         is the device-side equivalent of the subcluster
//                         merge step of the cited systems);
//   4. border kernel    — non-core points adopt the smallest core
//                         neighbor's label;
//   5. D2H              — only |D| labels cross the bus (the selling point
//                         of in-GPU clustering: tiny transfers).
//
// The trade-off the paper's evaluation exploits: this baseline re-runs the
// whole pipeline for every (eps, minpts) variant, whereas HYBRID-DBSCAN
// reuses T across minpts values and pipelines T construction across eps
// values. bench/baseline_gpu_dbscan regenerates that comparison.
#pragma once

#include <cstdint>

#include "cudasim/device.hpp"
#include "dbscan/cluster_result.hpp"
#include "index/grid_index.hpp"

namespace hdbscan::gpu {

struct GpuDbscanReport {
  std::uint32_t propagation_iterations = 0;
  std::uint64_t core_points = 0;
  double modeled_seconds = 0.0;  ///< summed K20c model over every phase
  double wall_seconds = 0.0;     ///< simulator wall time
  std::uint64_t d2h_bytes = 0;   ///< labels only
};

/// Runs in-GPU DBSCAN for one parameterization. The returned labels are in
/// the *index's* point order (like dbscan_grid); map through
/// index.original_ids for input order. Valid DBSCAN result: exact on cores
/// and noise, borders follow the deterministic smallest-label rule.
ClusterResult gpu_dbscan(cudasim::Device& device, const GridIndex& index,
                         float eps, int minpts,
                         GpuDbscanReport* report = nullptr);

}  // namespace hdbscan::gpu
