#include "gpu/kernels.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <span>
#include <type_traits>

namespace hdbscan::gpu {

namespace {

/// Candidate traversal shared by the per-point kernel bodies. Calls
/// `emit(candidate)` for every candidate within eps of `point`, charging
/// the per-candidate reads (lookup id 4 B + point 8 B) and the 6-op
/// squared-distance test.
///
/// kFull walks the whole 9-cell stencil — every qualifying pair (i, j) is
/// tested from both sides. kHalf tests each pair exactly once: the own
/// cell contributes only the suffix of candidates at/after the query's own
/// lookup position (found by binary search over the cell's ascending slice
/// of A — charged as log2 candidate-id reads), and only the forward half
/// of the stencil is visited. Emissions are therefore forward rows only;
/// symmetry is restored downstream (NeighborTable::expand_half_table).
template <typename Emit>
void for_each_neighbor(const GridView& view, ScanMode mode, PointId pid,
                       const Point2& point, float eps2,
                       const QualitySpec& quality, cudasim::ThreadCtx& ctx,
                       Emit&& emit) {
  const bool sampled = quality.sampled();
  auto scan_range = [&](std::uint32_t begin, std::uint32_t end) {
    const std::uint32_t candidates = end - begin;
    if (!sampled) {
      ctx.count_global_bytes(static_cast<std::uint64_t>(candidates) *
                             (sizeof(PointId) + sizeof(Point2)));
      ctx.count_flops(static_cast<std::uint64_t>(candidates) * 6);
      for (std::uint32_t a = begin; a < end; ++a) {
        const PointId candidate = view.lookup[a];
        if (dist2(point, view.points[candidate]) <= eps2) emit(candidate);
      }
      return;
    }
    // Subsampled: the Bernoulli trial runs on the id pair *before* the
    // candidate's point is read, so a dropped candidate costs only its
    // 4 B id read plus the ~4-op hash; kept candidates pay the usual 8 B
    // point fetch and 6-op distance test.
    std::uint64_t kept = 0;
    for (std::uint32_t a = begin; a < end; ++a) {
      const PointId candidate = view.lookup[a];
      if (!quality.keep_pair(pid, candidate)) continue;
      ++kept;
      if (dist2(point, view.points[candidate]) <= eps2) emit(candidate);
    }
    ctx.count_global_bytes(
        static_cast<std::uint64_t>(candidates) * sizeof(PointId) +
        kept * sizeof(Point2));
    ctx.count_flops(static_cast<std::uint64_t>(candidates) * 4 + kept * 6);
  };

  // `params` keeps the global geometry even on a shard slab, so cell ids
  // are global; the slab's cells array is indexed relative to cell_base.
  // Owned points' whole stencils lie inside the slab by construction
  // (shard_planner includes the epsilon-halo rows), so no bound check.
  const std::uint32_t cell = view.params.linear_cell(point);
  std::array<std::uint32_t, 9> cell_ids{};
  unsigned ncells = 0;
  if (mode == ScanMode::kHalf) {
    const CellRange own = view.cells[cell - view.cell_base];
    ctx.count_global_bytes(sizeof(CellRange));
    const PointId* first = view.lookup + own.begin;
    const PointId* last = view.lookup + own.end;
    const PointId* lo = std::lower_bound(first, last, pid);
    unsigned probes = 0;
    while ((1u << probes) < own.count()) ++probes;
    ctx.count_global_bytes(static_cast<std::uint64_t>(probes) *
                           sizeof(PointId));
    scan_range(static_cast<std::uint32_t>(lo - view.lookup), own.end);
    ncells = get_forward_neighbor_cells(view.params, cell, cell_ids);
  } else {
    ncells = get_neighbor_cells(view.params, cell, cell_ids);
  }
  for (unsigned c = 0; c < ncells; ++c) {
    const CellRange range = view.cells[cell_ids[c] - view.cell_base];
    ctx.count_global_bytes(sizeof(CellRange));
    scan_range(range.begin, range.end);
  }
}

/// BVH counterpart of for_each_neighbor: explicit-stack traversal over the
/// packed node array. Every visited node costs one node read and the
/// min_dist2 prune (~8 ops); accepted leaves charge like a shared-kernel
/// tile — candidate ids are read for the whole leaf (the kHalf id filter
/// needs them), points and the 6-op distance test only for tested ones.
/// Under kHalf subtrees whose max_id < pid hold nothing row pid owns and
/// are pruned before their MBR is even tested.
template <typename Emit>
void for_each_neighbor_bvh(const BvhView& view, ScanMode mode, PointId pid,
                           const Point2& point, float eps2,
                           const QualitySpec& quality, cudasim::ThreadCtx& ctx,
                           Emit&& emit) {
  const bool half = mode == ScanMode::kHalf;
  const bool sampled = quality.sampled();
  std::uint32_t stack[160];
  unsigned depth = 0;
  stack[depth++] = view.root;
  std::uint64_t nodes_read = 0;
  while (depth > 0) {
    const BvhNode& node = view.nodes[stack[--depth]];
    ++nodes_read;
    if (half && node.max_id < pid) continue;
    if (node.mbr.min_dist2(point) > eps2) continue;
    if (node.leaf != 0) {
      std::uint64_t tested = 0;
      std::uint64_t hashed = 0;
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        const PointId cand = view.leaf_ids[i];
        if (half && cand < pid) continue;  // id-ownership rule
        if (sampled) {
          // Same pre-point-read Bernoulli trial as the grid stencil: the
          // MBR prune only ever discards non-neighbors, so both backends
          // sample the identical pair set.
          ++hashed;
          if (!quality.keep_pair(pid, cand)) continue;
        }
        ++tested;
        if (dist2(point, view.leaf_points[i]) <= eps2) emit(cand);
      }
      ctx.count_global_bytes(
          static_cast<std::uint64_t>(node.count) * sizeof(PointId) +
          tested * sizeof(Point2));
      ctx.count_flops(hashed * 4 + tested * 6);
    } else {
      for (std::uint32_t c = node.first; c < node.first + node.count; ++c) {
        stack[depth++] = c;
      }
    }
  }
  ctx.count_global_bytes(nodes_read * sizeof(BvhNode));
  ctx.count_flops(nodes_read * 8);
}

/// Per-thread body of GPUCalcGlobal (paper Alg. 2, with the batching
/// transformation of §VI: the processed point is gid * n_b + l).
struct GlobalKernelBody {
  GridView view;
  float eps2;
  BatchSpec batch;
  ResultSinkView sink;
  ScanMode mode;
  QualitySpec quality;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i =
        gid * batch.num_batches + batch.batch;  // strided assignment
    if (i >= view.query_count()) return;

    const auto pid = static_cast<PointId>(i);
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));

    StagedSink staged(sink);
    // Values go out through the emission map (identity on the full index;
    // local->global on shard slabs): one extra 4 B read per emitted pair,
    // which buys the merge freedom from ever touching individual pairs.
    for_each_neighbor(view, mode, pid, point, eps2, quality, ctx,
                      [&](PointId candidate) {
                        if (view.emit_ids != nullptr) {
                          ctx.count_global_bytes(sizeof(PointId));
                        }
                        staged.push(NeighborPair{pid, view.emit(candidate)},
                                    ctx);
                      });
    staged.flush(ctx);
  }
};

struct SharedKernelParams {
  GridView view;
  const std::uint32_t* schedule;
  float eps2;
  ResultSinkView sink;
  ScanMode mode;
  QualitySpec quality;
};

// Shared-memory arena layout for GPUCalcShared (block size B):
//   [0, 36)                      neighbor cell ids (<= 9 x u32)
//   [36, 40)                     neighbor cell count
//   [40, 40 + 8B)                origin tile points
//   [40 + 8B, 40 + 12B)          origin tile ids
//   [40 + 12B, 40 + 20B)         comparison tile points
//   [40 + 20B, 40 + 24B)         comparison tile ids
constexpr std::size_t kSmemHeader = 40;

/// One logical thread of GPUCalcShared (paper Alg. 3) as a coroutine;
/// co_await ctx.sync() is the simulator's __syncthreads().
///
/// No emission map here: push_dual emits each matched id as a key in one
/// direction and a value in the other, and keys must stay in resident-id
/// space (they index the CSR/staging rows). Shard builds — the only users
/// of emit_ids — disable the shared kernel for exactly this class of
/// reason (ghost-key rows), so the map being ignored is unreachable.
cudasim::KernelTask shared_kernel_thread(cudasim::CoopCtx& ctx,
                                         SharedKernelParams p) {
  const unsigned tid = ctx.thread_idx;
  const unsigned bdim = ctx.block_dim;
  StagedSink staged(p.sink);

  auto cell_ids = ctx.shared_array<std::uint32_t>(0, 9);
  auto cell_count = ctx.shared_array<std::uint32_t>(36, 1);
  auto origin_pts = ctx.shared_array<Point2>(kSmemHeader, bdim);
  auto origin_ids =
      ctx.shared_array<PointId>(kSmemHeader + bdim * sizeof(Point2), bdim);
  auto comp_pts = ctx.shared_array<Point2>(
      kSmemHeader + bdim * (sizeof(Point2) + sizeof(PointId)), bdim);
  auto comp_ids = ctx.shared_array<PointId>(
      kSmemHeader + bdim * (2 * sizeof(Point2) + sizeof(PointId)), bdim);

  // The block's cell (schedule S maps blocks to non-empty cells).
  const std::uint32_t cell_to_proc = p.schedule[ctx.block_idx];
  ctx.count_global_bytes(sizeof(std::uint32_t));

  // Thread 0 publishes the comparison cell ids (Alg. 3 lines 8-10). In
  // kHalf the list is the own cell first (compared under the id >= mine
  // rule) followed by the forward stencil; every qualifying pair is then
  // tested by exactly one block and emitted in both directions on the
  // spot (push_dual), so this kernel's output is the full table with no
  // host-side expansion step.
  const bool half = p.mode == ScanMode::kHalf;
  if (tid == 0) {
    std::array<std::uint32_t, 9> tmp{};
    unsigned n = 0;
    if (half) {
      cell_ids[n++] = cell_to_proc;
      const unsigned fwd =
          get_forward_neighbor_cells(p.view.params, cell_to_proc, tmp);
      for (unsigned c = 0; c < fwd; ++c) cell_ids[n++] = tmp[c];
    } else {
      n = get_neighbor_cells(p.view.params, cell_to_proc, tmp);
      for (unsigned c = 0; c < n; ++c) cell_ids[c] = tmp[c];
    }
    cell_count[0] = n;
    ctx.count_shared_bytes(4ull * n + 4);
  }
  co_await ctx.sync();

  const CellRange origin_range = p.view.cells[cell_to_proc - p.view.cell_base];
  ctx.count_global_bytes(sizeof(CellRange));

  // Outer tiling loop: needed when the origin cell holds more points than
  // the block size (the "additional loop" of §IV-B).
  for (std::uint32_t obase = origin_range.begin; obase < origin_range.end;
       obase += bdim) {
    const std::uint32_t oidx = obase + tid;
    const bool has_origin = oidx < origin_range.end;
    if (has_origin) {
      const PointId id = p.view.lookup[oidx];
      origin_ids[tid] = id;
      origin_pts[tid] = p.view.points[id];
      ctx.count_global_bytes(sizeof(PointId) + sizeof(Point2));
      ctx.count_shared_bytes(sizeof(PointId) + sizeof(Point2));
    }
    co_await ctx.sync();

    const unsigned ncells = cell_count[0];
    for (unsigned c = 0; c < ncells; ++c) {
      const CellRange comp_range = p.view.cells[cell_ids[c] - p.view.cell_base];
      ctx.count_global_bytes(sizeof(CellRange));
      for (std::uint32_t cbase = comp_range.begin; cbase < comp_range.end;
           cbase += bdim) {
        // Page one comparison tile into shared memory (lines 15-17).
        const std::uint32_t cidx = cbase + tid;
        if (cidx < comp_range.end) {
          const PointId id = p.view.lookup[cidx];
          comp_ids[tid] = id;
          comp_pts[tid] = p.view.points[id];
          ctx.count_global_bytes(sizeof(PointId) + sizeof(Point2));
          ctx.count_shared_bytes(sizeof(PointId) + sizeof(Point2));
        }
        co_await ctx.sync();

        // Compare this thread's origin point against the tile (lines
        // 19-22), everything served from shared memory. In kHalf the
        // own-cell tile (c == 0) only tests candidates with id >= mine —
        // the ordering invariant's same-cell halving — and cross matches
        // are emitted in both directions at once.
        if (has_origin) {
          const std::uint32_t tile =
              std::min<std::uint32_t>(bdim, comp_range.end - cbase);
          const Point2 mine = origin_pts[tid];
          const PointId my_id = origin_ids[tid];
          const bool own_half = half && c == 0;
          const bool sampled = p.quality.sampled();
          std::uint64_t tested = 0;
          std::uint64_t hashed = 0;
          for (std::uint32_t j = 0; j < tile; ++j) {
            const PointId cand = comp_ids[j];
            if (own_half && cand < my_id) continue;
            if (sampled) {
              ++hashed;  // id hash before the shared point read
              if (!p.quality.keep_pair(my_id, cand)) continue;
            }
            ++tested;
            if (dist2(mine, comp_pts[j]) <= p.eps2) {
              if (!half) {
                staged.push(NeighborPair{my_id, cand}, ctx);
              } else if (cand == my_id) {
                staged.push(NeighborPair{my_id, my_id}, ctx);
              } else {
                staged.push_dual(my_id, cand, ctx);
              }
            }
          }
          // Candidate ids are read for the whole tile (the filter needs
          // them); points and the distance test only for tested ones.
          ctx.count_shared_bytes(sizeof(Point2) + sizeof(PointId) +
                                 static_cast<std::uint64_t>(tile) *
                                     sizeof(PointId) +
                                 tested * sizeof(Point2));
          ctx.count_flops(hashed * 4 + tested * 6);
        }
        // Keep the tile stable until every thread is done comparing.
        co_await ctx.sync();
      }
    }
    // Keep the origin tile stable until every thread finished this round.
    co_await ctx.sync();
  }
  staged.flush(ctx);
}

/// Pass 1 of the two-pass CSR builder: thread g counts the neighbors of
/// its batch point and writes counts[g]. No atomics, no result
/// materialization — an exclusive scan of `counts` then yields the exact
/// CSR slot offsets for the fill pass.
struct CountBatchKernelBody {
  GridView view;
  float eps2;
  BatchSpec batch;
  std::uint32_t* counts;
  ScanMode mode;
  QualitySpec quality;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.query_count()) return;
    const auto pid = static_cast<PointId>(i);
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));
    std::uint32_t neighbors = 0;
    // In kHalf the counts are *forward-row* lengths — no atomics on other
    // rows; the host transpose restores the back rows after the merge.
    for_each_neighbor(view, mode, pid, point, eps2, quality, ctx,
                      [&](PointId) { ++neighbors; });
    counts[gid] = neighbors;
    ctx.count_global_bytes(sizeof(std::uint32_t));
  }
};

/// Pass 2 of the two-pass CSR builder: thread g re-runs its neighborhood
/// search and writes the neighbor ids directly into its pre-sized CSR slot
/// [offsets[g], offsets[g] + counts[g]). The offsets are exact, so the
/// pass needs no atomics, no sort, and ships bare PointId values (half the
/// bytes of a NeighborPair) over PCIe.
struct FillCsrKernelBody {
  GridView view;
  float eps2;
  BatchSpec batch;
  const std::uint32_t* offsets;
  PointId* values;
  ScanMode mode;
  QualitySpec quality;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.query_count()) return;
    const auto pid = static_cast<PointId>(i);
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2) + sizeof(std::uint32_t));
    PointId* out = values + offsets[gid];
    // Emission-mapped values (see GlobalKernelBody): the CSR slots receive
    // globally addressed neighbor ids on shard slabs.
    for_each_neighbor(view, mode, pid, point, eps2, quality, ctx,
                      [&](PointId candidate) {
                        *out++ = view.emit(candidate);
                        ctx.count_global_bytes(
                            view.emit_ids != nullptr ? 2 * sizeof(PointId)
                                                     : sizeof(PointId));
                      });
  }
};

/// BVH pass 1: like CountBatchKernelBody but over the tree traversal. No
/// emission map — BVH-backed builds are whole-index only (sharded slabs
/// keep the grid backend), so resident ids are already global.
struct BvhCountBatchKernelBody {
  BvhView view;
  float eps2;
  BatchSpec batch;
  std::uint32_t* counts;
  ScanMode mode;
  QualitySpec quality;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.query_count()) return;
    const auto pid = static_cast<PointId>(i);
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));
    std::uint32_t neighbors = 0;
    for_each_neighbor_bvh(view, mode, pid, point, eps2, quality, ctx,
                          [&](PointId) { ++neighbors; });
    counts[gid] = neighbors;
    ctx.count_global_bytes(sizeof(std::uint32_t));
  }
};

/// BVH pass 2: fills the pre-sized CSR slots, mirroring FillCsrKernelBody.
struct BvhFillCsrKernelBody {
  BvhView view;
  float eps2;
  BatchSpec batch;
  const std::uint32_t* offsets;
  PointId* values;
  ScanMode mode;
  QualitySpec quality;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.query_count()) return;
    const auto pid = static_cast<PointId>(i);
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2) + sizeof(std::uint32_t));
    PointId* out = values + offsets[gid];
    for_each_neighbor_bvh(view, mode, pid, point, eps2, quality, ctx,
                          [&](PointId candidate) {
                            *out++ = candidate;
                            ctx.count_global_bytes(sizeof(PointId));
                          });
  }
};

/// Thread-local parking buffer size of the fused kernels (spilled to
/// StreamingDbscan::ingest_fused when full and at thread end).
constexpr unsigned kFusedSpill = 256;

/// Per-thread body of the fused no-table clustering kernel, shared by both
/// backends (`traverse` dispatches to the grid stencil or the BVH stack).
///
/// Degree handling: the thread's own contributions (self pair + every
/// candidate it tests) accumulate in a register and land as ONE fetch_add
/// at thread end; under kHalf the back contribution to each cross
/// partner's degree is a per-pair fetch_add (the streaming equivalent of
/// expand_half_table's counting pass, done in-kernel). Core checks use the
/// partner add's return value and the own-degree register as monotone
/// lower bounds — a pair that looks undecidable now is parked and settled
/// by compaction or finalize, never dropped.
///
/// Exactly-once: launches fault before any block runs (cudasim contract),
/// so a failed batch contributed nothing and is safe to requeue whole.
template <typename View>
struct FusedKernelBody {
  View view;
  float eps2;
  BatchSpec batch;
  ScanMode mode;
  QualitySpec quality;
  StreamingDbscan::FusedView fu;
  StreamingDbscan* sink;

  void traverse(PointId pid, const Point2& point, cudasim::ThreadCtx& ctx,
                auto&& emit) const {
    if constexpr (std::is_same_v<View, GridView>) {
      for_each_neighbor(view, mode, pid, point, eps2, quality, ctx, emit);
    } else {
      for_each_neighbor_bvh(view, mode, pid, point, eps2, quality, ctx, emit);
    }
  }

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.query_count()) return;
    const auto pid = static_cast<PointId>(i);
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));

    NeighborPair local[kFusedSpill];
    unsigned nlocal = 0;
    std::uint32_t own_degree = 0;
    std::uint64_t seen = 0;
    std::uint64_t streamed = 0;

    traverse(pid, point, ctx, [&](PointId cand) {
      ++own_degree;  // self pair included: degree counts the point itself
      if (cand == pid) return;
      std::uint32_t deg_v;
      if (mode == ScanMode::kHalf) {
        // Forward traversals see each cross pair once; the partner's
        // degree gains the back contribution here. The returned value is
        // a monotone lower bound on the partner's final degree.
        deg_v = fu.degree[cand].fetch_add(1, std::memory_order_relaxed) + 1;
        ctx.count_atomic();
      } else {
        // Full traversals see each pair twice; the smaller-id side owns
        // the edge work and partners count their own rows.
        if (pid > cand) return;
        deg_v = fu.degree[cand].load(std::memory_order_relaxed);
        ctx.count_global_bytes(sizeof(std::uint32_t));
      }
      ++seen;
      const std::uint32_t deg_p =
          fu.degree[pid].load(std::memory_order_relaxed) + own_degree;
      ctx.count_global_bytes(sizeof(std::uint32_t));
      if (deg_p >= fu.required && deg_v >= fu.required) {
        // Both endpoints already core: union on the spot (monotonicity
        // makes this final). One CAS plus the find chain's reads.
        fu.uf->unite(pid, cand);
        ctx.count_atomic();
        ctx.count_global_bytes(2 * sizeof(std::uint32_t));
        ++streamed;
      } else {
        local[nlocal++] = NeighborPair{pid, cand};
        ctx.count_global_bytes(sizeof(NeighborPair));  // parked-edge write
        if (nlocal == kFusedSpill) {
          sink->ingest_fused(std::span<const NeighborPair>(local, nlocal), 0,
                             0);
          nlocal = 0;
        }
      }
    });

    if (own_degree != 0) {
      fu.degree[pid].fetch_add(own_degree, std::memory_order_relaxed);
      ctx.count_atomic();
    }
    if (nlocal != 0 || seen != 0) {
      sink->ingest_fused(std::span<const NeighborPair>(local, nlocal), seen,
                         streamed);
    }
  }
};

/// Per-thread body of the estimation kernel: thread t counts the neighbors
/// of sample point t * stride and contributes one atomic add.
struct CountKernelBody {
  GridView view;
  float eps2;
  std::uint32_t stride;
  std::atomic<std::uint64_t>* total;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i =
        static_cast<std::uint64_t>(ctx.global_id()) * stride;
    if (i >= view.query_count()) return;
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));
    std::uint64_t neighbors = 0;
    std::array<std::uint32_t, 9> cell_ids{};
    const unsigned ncells = get_neighbor_cells(
        view.params, view.params.linear_cell(point), cell_ids);
    for (unsigned c = 0; c < ncells; ++c) {
      const CellRange range = view.cells[cell_ids[c] - view.cell_base];
      ctx.count_global_bytes(sizeof(CellRange));
      const std::uint32_t candidates = range.count();
      ctx.count_global_bytes(static_cast<std::uint64_t>(candidates) *
                             (sizeof(PointId) + sizeof(Point2)));
      ctx.count_flops(static_cast<std::uint64_t>(candidates) * 6);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        if (dist2(point, view.points[view.lookup[a]]) <= eps2) ++neighbors;
      }
    }
    total->fetch_add(neighbors, std::memory_order_relaxed);
    ctx.count_atomic();
  }
};

[[nodiscard]] unsigned grid_dim_for(std::uint64_t threads_needed,
                                    unsigned block_size) {
  return static_cast<unsigned>((threads_needed + block_size - 1) / block_size);
}

}  // namespace

cudasim::KernelStats run_calc_global(cudasim::Device& device,
                                     const GridView& view, float eps,
                                     BatchSpec batch, ResultSinkView sink,
                                     ScanMode mode, unsigned block_size,
                                     QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.query_count());
  const unsigned grid = grid_dim_for(points, block_size);
  GlobalKernelBody body{view, eps * eps, batch, sink, mode, quality};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

void enqueue_calc_global(cudasim::Stream& stream, const GridView& view,
                         float eps, BatchSpec batch, ResultSinkView sink,
                         ScanMode mode, cudasim::KernelStats* stats_out,
                         unsigned block_size, QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.query_count());
  const unsigned grid = grid_dim_for(points, block_size);
  GlobalKernelBody body{view, eps * eps, batch, sink, mode, quality};
  stream.launch(grid, block_size, body, stats_out);
}

cudasim::KernelStats run_count_batch(cudasim::Device& device,
                                     const GridView& view, float eps,
                                     BatchSpec batch, std::uint32_t* counts,
                                     ScanMode mode, unsigned block_size,
                                     QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.query_count());
  const unsigned grid = grid_dim_for(points, block_size);
  CountBatchKernelBody body{view, eps * eps, batch, counts, mode, quality};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

cudasim::KernelStats run_fill_csr(cudasim::Device& device,
                                  const GridView& view, float eps,
                                  BatchSpec batch,
                                  const std::uint32_t* offsets,
                                  PointId* values, ScanMode mode,
                                  unsigned block_size, QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.query_count());
  const unsigned grid = grid_dim_for(points, block_size);
  FillCsrKernelBody body{view,   eps * eps, batch,
                         offsets, values,    mode, quality};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

cudasim::KernelStats run_count_batch(cudasim::Device& device,
                                     const BvhView& view, float eps,
                                     BatchSpec batch, std::uint32_t* counts,
                                     ScanMode mode, unsigned block_size,
                                     QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.query_count());
  const unsigned grid = grid_dim_for(points, block_size);
  BvhCountBatchKernelBody body{view, eps * eps, batch, counts, mode, quality};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

cudasim::KernelStats run_fill_csr(cudasim::Device& device,
                                  const BvhView& view, float eps,
                                  BatchSpec batch,
                                  const std::uint32_t* offsets,
                                  PointId* values, ScanMode mode,
                                  unsigned block_size, QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.query_count());
  const unsigned grid = grid_dim_for(points, block_size);
  BvhFillCsrKernelBody body{view,    eps * eps, batch,
                            offsets, values,    mode, quality};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

cudasim::KernelStats run_fused_batch(cudasim::Device& device,
                                     const GridView& view, float eps,
                                     BatchSpec batch, StreamingDbscan& sink,
                                     ScanMode mode, unsigned block_size,
                                     QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.query_count());
  const unsigned grid = grid_dim_for(points, block_size);
  FusedKernelBody<GridView> body{view,    eps * eps,
                                 batch,   mode,
                                 quality, sink.fused_view(),
                                 &sink};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

cudasim::KernelStats run_fused_batch(cudasim::Device& device,
                                     const BvhView& view, float eps,
                                     BatchSpec batch, StreamingDbscan& sink,
                                     ScanMode mode, unsigned block_size,
                                     QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.query_count());
  const unsigned grid = grid_dim_for(points, block_size);
  FusedKernelBody<BvhView> body{view,    eps * eps,
                                batch,   mode,
                                quality, sink.fused_view(),
                                &sink};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

std::size_t shared_kernel_smem_bytes(unsigned block_size) {
  return kSmemHeader +
         static_cast<std::size_t>(block_size) *
             (2 * sizeof(Point2) + 2 * sizeof(PointId));
}

cudasim::KernelStats run_calc_shared(cudasim::Device& device,
                                     const GridView& view,
                                     const std::uint32_t* schedule,
                                     std::uint32_t num_cells, float eps,
                                     ResultSinkView sink, ScanMode mode,
                                     unsigned block_size,
                                     QualitySpec quality) {
  SharedKernelParams params{view, schedule, eps * eps, sink, mode, quality};
  auto gen = [params](cudasim::CoopCtx& ctx) {
    return shared_kernel_thread(ctx, params);
  };
  return cudasim::run_coop_kernel(device, num_cells, block_size,
                                  shared_kernel_smem_bytes(block_size), gen);
}

void enqueue_calc_shared(cudasim::Stream& stream, const GridView& view,
                         const std::uint32_t* schedule, std::uint32_t num_cells,
                         float eps, ResultSinkView sink, ScanMode mode,
                         cudasim::KernelStats* stats_out,
                         unsigned block_size, QualitySpec quality) {
  SharedKernelParams params{view, schedule, eps * eps, sink, mode, quality};
  auto gen = [params](cudasim::CoopCtx& ctx) {
    return shared_kernel_thread(ctx, params);
  };
  stream.launch_coop(num_cells, block_size,
                     shared_kernel_smem_bytes(block_size), gen, stats_out);
}

std::uint64_t run_count_kernel(cudasim::Device& device, const GridView& view,
                               float eps, std::uint32_t sample_stride,
                               cudasim::KernelStats* stats_out,
                               unsigned block_size) {
  if (sample_stride == 0) sample_stride = 1;
  std::atomic<std::uint64_t> total{0};
  const std::uint64_t samples =
      (view.query_count() + sample_stride - 1) / sample_stride;
  const unsigned grid = grid_dim_for(samples, block_size);
  CountKernelBody body{view, eps * eps, sample_stride, &total};
  const cudasim::KernelStats stats =
      cudasim::run_flat_kernel(device, grid, block_size, body);
  if (stats_out != nullptr) *stats_out = stats;
  return total.load(std::memory_order_relaxed);
}

}  // namespace hdbscan::gpu
