#include "gpu/kernels.hpp"

#include <algorithm>
#include <array>
#include <atomic>

namespace hdbscan::gpu {

namespace {

/// Per-thread body of GPUCalcGlobal (paper Alg. 2, with the batching
/// transformation of §VI: the processed point is gid * n_b + l).
struct GlobalKernelBody {
  GridView view;
  float eps2;
  BatchSpec batch;
  ResultSinkView sink;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i =
        gid * batch.num_batches + batch.batch;  // strided assignment
    if (i >= view.num_points) return;

    const auto pid = static_cast<PointId>(i);
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));

    StagedSink staged(sink);
    std::array<std::uint32_t, 9> cell_ids{};
    const unsigned ncells =
        get_neighbor_cells(view.params, view.params.linear_cell(point),
                           cell_ids);
    for (unsigned c = 0; c < ncells; ++c) {
      const CellRange range = view.cells[cell_ids[c]];
      ctx.count_global_bytes(sizeof(CellRange));
      const std::uint32_t candidates = range.count();
      // Per candidate: lookup id (4 B) + point (8 B) from global memory,
      // and the 6-op squared-distance test.
      ctx.count_global_bytes(
          static_cast<std::uint64_t>(candidates) *
          (sizeof(PointId) + sizeof(Point2)));
      ctx.count_flops(static_cast<std::uint64_t>(candidates) * 6);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        const PointId candidate = view.lookup[a];
        if (dist2(point, view.points[candidate]) <= eps2) {
          staged.push(NeighborPair{pid, candidate}, ctx);
        }
      }
    }
    staged.flush(ctx);
  }
};

struct SharedKernelParams {
  GridView view;
  const std::uint32_t* schedule;
  float eps2;
  ResultSinkView sink;
};

// Shared-memory arena layout for GPUCalcShared (block size B):
//   [0, 36)                      neighbor cell ids (<= 9 x u32)
//   [36, 40)                     neighbor cell count
//   [40, 40 + 8B)                origin tile points
//   [40 + 8B, 40 + 12B)          origin tile ids
//   [40 + 12B, 40 + 20B)         comparison tile points
//   [40 + 20B, 40 + 24B)         comparison tile ids
constexpr std::size_t kSmemHeader = 40;

/// One logical thread of GPUCalcShared (paper Alg. 3) as a coroutine;
/// co_await ctx.sync() is the simulator's __syncthreads().
cudasim::KernelTask shared_kernel_thread(cudasim::CoopCtx& ctx,
                                         SharedKernelParams p) {
  const unsigned tid = ctx.thread_idx;
  const unsigned bdim = ctx.block_dim;
  StagedSink staged(p.sink);

  auto cell_ids = ctx.shared_array<std::uint32_t>(0, 9);
  auto cell_count = ctx.shared_array<std::uint32_t>(36, 1);
  auto origin_pts = ctx.shared_array<Point2>(kSmemHeader, bdim);
  auto origin_ids =
      ctx.shared_array<PointId>(kSmemHeader + bdim * sizeof(Point2), bdim);
  auto comp_pts = ctx.shared_array<Point2>(
      kSmemHeader + bdim * (sizeof(Point2) + sizeof(PointId)), bdim);
  auto comp_ids = ctx.shared_array<PointId>(
      kSmemHeader + bdim * (2 * sizeof(Point2) + sizeof(PointId)), bdim);

  // The block's cell (schedule S maps blocks to non-empty cells).
  const std::uint32_t cell_to_proc = p.schedule[ctx.block_idx];
  ctx.count_global_bytes(sizeof(std::uint32_t));

  // Thread 0 publishes the adjacent cell ids (Alg. 3 lines 8-10).
  if (tid == 0) {
    std::array<std::uint32_t, 9> tmp{};
    const unsigned n = get_neighbor_cells(p.view.params, cell_to_proc, tmp);
    for (unsigned c = 0; c < n; ++c) cell_ids[c] = tmp[c];
    cell_count[0] = n;
    ctx.count_shared_bytes(4ull * n + 4);
  }
  co_await ctx.sync();

  const CellRange origin_range = p.view.cells[cell_to_proc];
  ctx.count_global_bytes(sizeof(CellRange));

  // Outer tiling loop: needed when the origin cell holds more points than
  // the block size (the "additional loop" of §IV-B).
  for (std::uint32_t obase = origin_range.begin; obase < origin_range.end;
       obase += bdim) {
    const std::uint32_t oidx = obase + tid;
    const bool has_origin = oidx < origin_range.end;
    if (has_origin) {
      const PointId id = p.view.lookup[oidx];
      origin_ids[tid] = id;
      origin_pts[tid] = p.view.points[id];
      ctx.count_global_bytes(sizeof(PointId) + sizeof(Point2));
      ctx.count_shared_bytes(sizeof(PointId) + sizeof(Point2));
    }
    co_await ctx.sync();

    const unsigned ncells = cell_count[0];
    for (unsigned c = 0; c < ncells; ++c) {
      const CellRange comp_range = p.view.cells[cell_ids[c]];
      ctx.count_global_bytes(sizeof(CellRange));
      for (std::uint32_t cbase = comp_range.begin; cbase < comp_range.end;
           cbase += bdim) {
        // Page one comparison tile into shared memory (lines 15-17).
        const std::uint32_t cidx = cbase + tid;
        if (cidx < comp_range.end) {
          const PointId id = p.view.lookup[cidx];
          comp_ids[tid] = id;
          comp_pts[tid] = p.view.points[id];
          ctx.count_global_bytes(sizeof(PointId) + sizeof(Point2));
          ctx.count_shared_bytes(sizeof(PointId) + sizeof(Point2));
        }
        co_await ctx.sync();

        // Compare this thread's origin point against the whole tile
        // (lines 19-22), everything served from shared memory.
        if (has_origin) {
          const std::uint32_t tile =
              std::min<std::uint32_t>(bdim, comp_range.end - cbase);
          const Point2 mine = origin_pts[tid];
          const PointId my_id = origin_ids[tid];
          ctx.count_shared_bytes(sizeof(Point2) + sizeof(PointId) +
                                 static_cast<std::uint64_t>(tile) *
                                     (sizeof(Point2) + sizeof(PointId)));
          ctx.count_flops(static_cast<std::uint64_t>(tile) * 6);
          for (std::uint32_t j = 0; j < tile; ++j) {
            if (dist2(mine, comp_pts[j]) <= p.eps2) {
              staged.push(NeighborPair{my_id, comp_ids[j]}, ctx);
            }
          }
        }
        // Keep the tile stable until every thread is done comparing.
        co_await ctx.sync();
      }
    }
    // Keep the origin tile stable until every thread finished this round.
    co_await ctx.sync();
  }
  staged.flush(ctx);
}

/// Pass 1 of the two-pass CSR builder: thread g counts the neighbors of
/// its batch point and writes counts[g]. No atomics, no result
/// materialization — an exclusive scan of `counts` then yields the exact
/// CSR slot offsets for the fill pass.
struct CountBatchKernelBody {
  GridView view;
  float eps2;
  BatchSpec batch;
  std::uint32_t* counts;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.num_points) return;
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));
    std::uint32_t neighbors = 0;
    std::array<std::uint32_t, 9> cell_ids{};
    const unsigned ncells = get_neighbor_cells(
        view.params, view.params.linear_cell(point), cell_ids);
    for (unsigned c = 0; c < ncells; ++c) {
      const CellRange range = view.cells[cell_ids[c]];
      ctx.count_global_bytes(sizeof(CellRange));
      const std::uint32_t candidates = range.count();
      ctx.count_global_bytes(static_cast<std::uint64_t>(candidates) *
                             (sizeof(PointId) + sizeof(Point2)));
      ctx.count_flops(static_cast<std::uint64_t>(candidates) * 6);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        neighbors += dist2(point, view.points[view.lookup[a]]) <= eps2;
      }
    }
    counts[gid] = neighbors;
    ctx.count_global_bytes(sizeof(std::uint32_t));
  }
};

/// Pass 2 of the two-pass CSR builder: thread g re-runs its neighborhood
/// search and writes the neighbor ids directly into its pre-sized CSR slot
/// [offsets[g], offsets[g] + counts[g]). The offsets are exact, so the
/// pass needs no atomics, no sort, and ships bare PointId values (half the
/// bytes of a NeighborPair) over PCIe.
struct FillCsrKernelBody {
  GridView view;
  float eps2;
  BatchSpec batch;
  const std::uint32_t* offsets;
  PointId* values;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.num_points) return;
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2) + sizeof(std::uint32_t));
    PointId* out = values + offsets[gid];
    std::array<std::uint32_t, 9> cell_ids{};
    const unsigned ncells = get_neighbor_cells(
        view.params, view.params.linear_cell(point), cell_ids);
    for (unsigned c = 0; c < ncells; ++c) {
      const CellRange range = view.cells[cell_ids[c]];
      ctx.count_global_bytes(sizeof(CellRange));
      const std::uint32_t candidates = range.count();
      ctx.count_global_bytes(static_cast<std::uint64_t>(candidates) *
                             (sizeof(PointId) + sizeof(Point2)));
      ctx.count_flops(static_cast<std::uint64_t>(candidates) * 6);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        const PointId candidate = view.lookup[a];
        if (dist2(point, view.points[candidate]) <= eps2) {
          *out++ = candidate;
          ctx.count_global_bytes(sizeof(PointId));
        }
      }
    }
  }
};

/// Per-thread body of the estimation kernel: thread t counts the neighbors
/// of sample point t * stride and contributes one atomic add.
struct CountKernelBody {
  GridView view;
  float eps2;
  std::uint32_t stride;
  std::atomic<std::uint64_t>* total;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i =
        static_cast<std::uint64_t>(ctx.global_id()) * stride;
    if (i >= view.num_points) return;
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));
    std::uint64_t neighbors = 0;
    std::array<std::uint32_t, 9> cell_ids{};
    const unsigned ncells = get_neighbor_cells(
        view.params, view.params.linear_cell(point), cell_ids);
    for (unsigned c = 0; c < ncells; ++c) {
      const CellRange range = view.cells[cell_ids[c]];
      ctx.count_global_bytes(sizeof(CellRange));
      const std::uint32_t candidates = range.count();
      ctx.count_global_bytes(static_cast<std::uint64_t>(candidates) *
                             (sizeof(PointId) + sizeof(Point2)));
      ctx.count_flops(static_cast<std::uint64_t>(candidates) * 6);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        if (dist2(point, view.points[view.lookup[a]]) <= eps2) ++neighbors;
      }
    }
    total->fetch_add(neighbors, std::memory_order_relaxed);
    ctx.count_atomic();
  }
};

[[nodiscard]] unsigned grid_dim_for(std::uint64_t threads_needed,
                                    unsigned block_size) {
  return static_cast<unsigned>((threads_needed + block_size - 1) / block_size);
}

}  // namespace

cudasim::KernelStats run_calc_global(cudasim::Device& device,
                                     const GridView& view, float eps,
                                     BatchSpec batch, ResultSinkView sink,
                                     unsigned block_size) {
  const std::uint32_t points = batch.points_in_batch(view.num_points);
  const unsigned grid = grid_dim_for(points, block_size);
  GlobalKernelBody body{view, eps * eps, batch, sink};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

void enqueue_calc_global(cudasim::Stream& stream, const GridView& view,
                         float eps, BatchSpec batch, ResultSinkView sink,
                         cudasim::KernelStats* stats_out,
                         unsigned block_size) {
  const std::uint32_t points = batch.points_in_batch(view.num_points);
  const unsigned grid = grid_dim_for(points, block_size);
  GlobalKernelBody body{view, eps * eps, batch, sink};
  stream.launch(grid, block_size, body, stats_out);
}

cudasim::KernelStats run_count_batch(cudasim::Device& device,
                                     const GridView& view, float eps,
                                     BatchSpec batch, std::uint32_t* counts,
                                     unsigned block_size) {
  const std::uint32_t points = batch.points_in_batch(view.num_points);
  const unsigned grid = grid_dim_for(points, block_size);
  CountBatchKernelBody body{view, eps * eps, batch, counts};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

cudasim::KernelStats run_fill_csr(cudasim::Device& device,
                                  const GridView& view, float eps,
                                  BatchSpec batch,
                                  const std::uint32_t* offsets,
                                  PointId* values, unsigned block_size) {
  const std::uint32_t points = batch.points_in_batch(view.num_points);
  const unsigned grid = grid_dim_for(points, block_size);
  FillCsrKernelBody body{view, eps * eps, batch, offsets, values};
  return cudasim::run_flat_kernel(device, grid, block_size, body);
}

std::size_t shared_kernel_smem_bytes(unsigned block_size) {
  return kSmemHeader +
         static_cast<std::size_t>(block_size) *
             (2 * sizeof(Point2) + 2 * sizeof(PointId));
}

cudasim::KernelStats run_calc_shared(cudasim::Device& device,
                                     const GridView& view,
                                     const std::uint32_t* schedule,
                                     std::uint32_t num_cells, float eps,
                                     ResultSinkView sink,
                                     unsigned block_size) {
  SharedKernelParams params{view, schedule, eps * eps, sink};
  auto gen = [params](cudasim::CoopCtx& ctx) {
    return shared_kernel_thread(ctx, params);
  };
  return cudasim::run_coop_kernel(device, num_cells, block_size,
                                  shared_kernel_smem_bytes(block_size), gen);
}

void enqueue_calc_shared(cudasim::Stream& stream, const GridView& view,
                         const std::uint32_t* schedule, std::uint32_t num_cells,
                         float eps, ResultSinkView sink,
                         cudasim::KernelStats* stats_out,
                         unsigned block_size) {
  SharedKernelParams params{view, schedule, eps * eps, sink};
  auto gen = [params](cudasim::CoopCtx& ctx) {
    return shared_kernel_thread(ctx, params);
  };
  stream.launch_coop(num_cells, block_size,
                     shared_kernel_smem_bytes(block_size), gen, stats_out);
}

std::uint64_t run_count_kernel(cudasim::Device& device, const GridView& view,
                               float eps, std::uint32_t sample_stride,
                               cudasim::KernelStats* stats_out,
                               unsigned block_size) {
  if (sample_stride == 0) sample_stride = 1;
  std::atomic<std::uint64_t> total{0};
  const std::uint64_t samples =
      (view.num_points + sample_stride - 1) / sample_stride;
  const unsigned grid = grid_dim_for(samples, block_size);
  CountKernelBody body{view, eps * eps, sample_stride, &total};
  const cudasim::KernelStats stats =
      cudasim::run_flat_kernel(device, grid, block_size, body);
  if (stats_out != nullptr) *stats_out = stats;
  return total.load(std::memory_order_relaxed);
}

}  // namespace hdbscan::gpu
