// Device-resident copy of the grid index (D, G, A and the schedule S are
// stored in global memory on the GPU — paper §IV).
#pragma once

#include <cstdint>

#include "cudasim/buffer.hpp"
#include "cudasim/stream.hpp"
#include "index/grid_index.hpp"

namespace hdbscan::gpu {

class GridDeviceIndex {
 public:
  /// Allocates device buffers and enqueues the H2D uploads on `stream`
  /// (pageable host memory — the index is uploaded once per epsilon).
  GridDeviceIndex(cudasim::Device& device, cudasim::Stream& stream,
                  const GridIndex& host_index)
      : params_(host_index.params),
        num_points_(static_cast<std::uint32_t>(host_index.points.size())),
        cell_base_(host_index.cell_base),
        num_query_(host_index.num_query),
        num_nonempty_(
            static_cast<std::uint32_t>(host_index.nonempty_cells.size())),
        max_cell_occupancy_(host_index.max_cell_occupancy),
        points_(device, host_index.points.size()),
        cells_(device, host_index.cells.size()),
        lookup_(device, host_index.lookup.size()),
        schedule_(device, host_index.nonempty_cells.size()) {
    stream.memcpy_to_device(points_, host_index.points.data(),
                            host_index.points.size());
    stream.memcpy_to_device(cells_, host_index.cells.data(),
                            host_index.cells.size());
    stream.memcpy_to_device(lookup_, host_index.lookup.data(),
                            host_index.lookup.size());
    stream.memcpy_to_device(schedule_, host_index.nonempty_cells.data(),
                            host_index.nonempty_cells.size());
    // No allocation at all without a map — a zero-byte buffer would still
    // consume a fault-injection op and shift scripted plans.
    if (!host_index.emit_ids.empty()) {
      emit_ = cudasim::DeviceBuffer<PointId>(device,
                                             host_index.emit_ids.size());
      stream.memcpy_to_device(emit_, host_index.emit_ids.data(),
                              host_index.emit_ids.size());
    }
  }

  [[nodiscard]] GridView view() const noexcept {
    return GridView{params_,
                    points_.device_data(),
                    num_points_,
                    cells_.device_data(),
                    lookup_.device_data(),
                    cell_base_,
                    num_query_,
                    emit_.empty() ? nullptr : emit_.device_data()};
  }

  [[nodiscard]] const std::uint32_t* schedule() const noexcept {
    return schedule_.device_data();
  }

  [[nodiscard]] std::uint32_t num_nonempty_cells() const noexcept {
    return num_nonempty_;
  }

  [[nodiscard]] std::uint32_t max_cell_occupancy() const noexcept {
    return max_cell_occupancy_;
  }

  [[nodiscard]] std::uint32_t num_points() const noexcept {
    return num_points_;
  }

 private:
  GridParams params_;
  std::uint32_t num_points_;
  std::uint32_t cell_base_;
  std::uint32_t num_query_;
  std::uint32_t num_nonempty_;
  std::uint32_t max_cell_occupancy_;
  cudasim::DeviceBuffer<Point2> points_;
  cudasim::DeviceBuffer<CellRange> cells_;
  cudasim::DeviceBuffer<PointId> lookup_;
  cudasim::DeviceBuffer<std::uint32_t> schedule_;
  cudasim::DeviceBuffer<PointId> emit_;  ///< value-emission map (may be empty)
};

}  // namespace hdbscan::gpu
