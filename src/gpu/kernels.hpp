// The paper's two epsilon-neighborhood GPU kernels plus the result-size
// estimation kernel for the batching scheme.
//
//  * GPUCalcGlobal (Alg. 2): one thread per point; reads candidates from
//    up to 9 adjacent grid cells straight out of global memory.
//  * GPUCalcShared (Alg. 3): one thread block per non-empty grid cell;
//    pages origin- and comparison-cell points into shared memory in
//    block-sized tiles with barriers between phases. When a cell holds
//    more points than the block size the extra tiling loop the paper
//    mentions kicks in.
//  * Count kernel (§VI): counts neighbors of a uniform sample of points to
//    produce the result-size estimate e_b without materializing results.
//
// Batched execution (§VI, Fig. 2): batch l of n_b processes points
// i = gid * n_b + l, so every batch samples the (spatially sorted) database
// uniformly and batch result sizes stay nearly equal.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "cudasim/device.hpp"
#include "cudasim/kernel.hpp"
#include "cudasim/stream.hpp"
#include "dbscan/streaming_dbscan.hpp"
#include "gpu/result_sink.hpp"
#include "index/bvh.hpp"
#include "index/grid_index.hpp"

namespace hdbscan::gpu {

/// Block size used throughout the paper's evaluation.
inline constexpr unsigned kDefaultBlockSize = 256;

/// Which slice of the strided point assignment a kernel invocation covers.
struct BatchSpec {
  std::uint32_t batch = 0;
  std::uint32_t num_batches = 1;

  /// Number of points batch `batch` processes out of `n` total.
  [[nodiscard]] std::uint32_t points_in_batch(std::uint32_t n) const noexcept {
    const std::uint32_t base = n / num_batches;
    const std::uint32_t rem = n % num_batches;
    return base + (batch < rem ? 1u : 0u);
  }
};

/// GPUCalcGlobal, synchronous (runs on the calling thread + executor pool).
/// Under ScanMode::kHalf each candidate pair is tested once and only the
/// *forward* rows are emitted (same-cell candidates at/after the query's
/// lookup position plus the forward stencil); the caller restores symmetry
/// afterwards via NeighborTable::expand_half_table.
/// Every traversal entry point below takes a trailing `quality`: under
/// ClusterQuality::kSubsampled each candidate pair is run through the
/// seeded Bernoulli filter *before* the candidate's point is read, so a
/// dropped pair costs only the 4-byte id read plus the hash — the point
/// fetch and distance test are skipped. Self-pairs always pass. The
/// estimation kernel stays exact (the estimate is a property of the data);
/// the planner scales it by the sample rate instead.
cudasim::KernelStats run_calc_global(cudasim::Device& device,
                                     const GridView& view, float eps,
                                     BatchSpec batch, ResultSinkView sink,
                                     ScanMode mode = ScanMode::kFull,
                                     unsigned block_size = kDefaultBlockSize,
                                     QualitySpec quality = {});

/// GPUCalcGlobal, enqueued on a stream. `stats_out` (optional) is written
/// when the launch completes.
void enqueue_calc_global(cudasim::Stream& stream, const GridView& view,
                         float eps, BatchSpec batch, ResultSinkView sink,
                         ScanMode mode = ScanMode::kFull,
                         cudasim::KernelStats* stats_out = nullptr,
                         unsigned block_size = kDefaultBlockSize,
                         QualitySpec quality = {});

/// GPUCalcShared, synchronous. `schedule` maps each block to a (non-empty)
/// cell id; `num_cells` is the grid dimension. Under ScanMode::kHalf each
/// pair is tested once and emitted in both directions device-side
/// (StagedSink::push_dual), so the output is already the full table.
cudasim::KernelStats run_calc_shared(cudasim::Device& device,
                                     const GridView& view,
                                     const std::uint32_t* schedule,
                                     std::uint32_t num_cells, float eps,
                                     ResultSinkView sink,
                                     ScanMode mode = ScanMode::kFull,
                                     unsigned block_size = kDefaultBlockSize,
                                     QualitySpec quality = {});

/// GPUCalcShared, enqueued on a stream.
void enqueue_calc_shared(cudasim::Stream& stream, const GridView& view,
                         const std::uint32_t* schedule, std::uint32_t num_cells,
                         float eps, ResultSinkView sink,
                         ScanMode mode = ScanMode::kFull,
                         cudasim::KernelStats* stats_out = nullptr,
                         unsigned block_size = kDefaultBlockSize,
                         QualitySpec quality = {});

/// Two-pass CSR builder, pass 1: per-point neighbor counts for one batch.
/// Thread g writes |N_eps(point g of the batch)| to counts[g]
/// (counts must hold batch.points_in_batch(n) entries). No atomics.
/// Under ScanMode::kHalf counts[g] is the *forward-row* length (still no
/// atomics — the host transpose restores back rows after the merge).
cudasim::KernelStats run_count_batch(cudasim::Device& device,
                                     const GridView& view, float eps,
                                     BatchSpec batch, std::uint32_t* counts,
                                     ScanMode mode = ScanMode::kFull,
                                     unsigned block_size = kDefaultBlockSize,
                                     QualitySpec quality = {});

/// Two-pass CSR builder, pass 2: fills neighbor ids into exact CSR slots.
/// `offsets` is the exclusive prefix scan of the pass-1 counts; thread g
/// writes its neighbors at values[offsets[g]...]. No atomics, no sort
/// needed afterwards. `mode` must match the count pass.
cudasim::KernelStats run_fill_csr(cudasim::Device& device,
                                  const GridView& view, float eps,
                                  BatchSpec batch,
                                  const std::uint32_t* offsets,
                                  PointId* values,
                                  ScanMode mode = ScanMode::kFull,
                                  unsigned block_size = kDefaultBlockSize,
                                  QualitySpec quality = {});

// --- IndexBackend::kBvh traversal variants -------------------------------
//
// Same per-point batching contract as the grid kernels, but candidates
// come from a packed-BVH stack traversal (min_dist2 pruning against node
// MBRs) instead of the 9-cell stencil. Under ScanMode::kHalf the tree has
// no forward stencil, so the half rule is id-based: row i owns exactly the
// candidates with id >= i (self included) and subtrees whose max_id < i
// are pruned outright. Every cross pair lands in exactly one row — the
// same cover expand_half_table and the streaming consumer require — so
// the merged/expanded table is identical to the grid backend's.

/// Two-pass CSR pass 1 over the BVH: counts[g] = |forward row of batch
/// point g| (full row under kFull). No atomics.
cudasim::KernelStats run_count_batch(cudasim::Device& device,
                                     const BvhView& view, float eps,
                                     BatchSpec batch, std::uint32_t* counts,
                                     ScanMode mode = ScanMode::kFull,
                                     unsigned block_size = kDefaultBlockSize,
                                     QualitySpec quality = {});

/// Two-pass CSR pass 2 over the BVH; `mode` must match the count pass.
cudasim::KernelStats run_fill_csr(cudasim::Device& device,
                                  const BvhView& view, float eps,
                                  BatchSpec batch,
                                  const std::uint32_t* offsets,
                                  PointId* values,
                                  ScanMode mode = ScanMode::kFull,
                                  unsigned block_size = kDefaultBlockSize,
                                  QualitySpec quality = {});

// --- Fused no-table clustering traversal (ClusterMode::kFused) -----------
//
// One launch does everything the count pass, scan, fill pass, transfers
// and sink hop did: thread i traverses its neighborhood once, accumulates
// its own degree locally (one fetch_add at thread end), adds the back
// contribution to degree[j] per cross pair (kHalf), and — because core
// status is monotone — unions both-core pairs into the consumer's
// AtomicUnionFind on the spot. Pairs that cannot be decided yet are
// buffered thread-locally and parked through StreamingDbscan::ingest_fused
// for the compaction/finalize machinery to settle. The neighbor table is
// never materialized: the only per-pair bytes are the parked-edge writes.

/// Fused traversal over the grid backend. Returns the launch's stats;
/// degrees/unions/parked edges land in `sink`.
cudasim::KernelStats run_fused_batch(cudasim::Device& device,
                                     const GridView& view, float eps,
                                     BatchSpec batch, StreamingDbscan& sink,
                                     ScanMode mode = ScanMode::kHalf,
                                     unsigned block_size = kDefaultBlockSize,
                                     QualitySpec quality = {});

/// Fused traversal over the BVH backend.
cudasim::KernelStats run_fused_batch(cudasim::Device& device,
                                     const BvhView& view, float eps,
                                     BatchSpec batch, StreamingDbscan& sink,
                                     ScanMode mode = ScanMode::kHalf,
                                     unsigned block_size = kDefaultBlockSize,
                                     QualitySpec quality = {});

/// Shared-memory bytes GPUCalcShared needs for a given block size (origin
/// and comparison tiles plus the neighbor-cell-id scratch).
[[nodiscard]] std::size_t shared_kernel_smem_bytes(unsigned block_size);

/// Result-size estimation kernel: counts |N_eps(p_i)| for points
/// i = 0, stride, 2*stride, ... and returns the raw sampled count e_b.
/// Runs synchronously; negligible cost by design (no result set).
std::uint64_t run_count_kernel(cudasim::Device& device, const GridView& view,
                               float eps, std::uint32_t sample_stride,
                               cudasim::KernelStats* stats_out = nullptr,
                               unsigned block_size = kDefaultBlockSize);

}  // namespace hdbscan::gpu
