#include "gpu/kernels3.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <span>

namespace hdbscan::gpu {

namespace {

/// 3-D analog of the 2-D for_each_neighbor: kFull walks the 27-cell
/// stencil, kHalf tests each pair once (own-cell suffix via binary search
/// plus the forward 13-cell stencil) and emits forward rows only.
template <typename Emit>
void for_each_neighbor3(const GridView3& view, ScanMode mode, PointId pid,
                        const Point3& point, float eps2,
                        const QualitySpec& quality, cudasim::ThreadCtx& ctx,
                        Emit&& emit) {
  const bool sampled = quality.sampled();
  auto scan_range = [&](std::uint32_t begin, std::uint32_t end) {
    const std::uint32_t candidates = end - begin;
    if (!sampled) {
      ctx.count_global_bytes(static_cast<std::uint64_t>(candidates) *
                             (sizeof(PointId) + sizeof(Point3)));
      ctx.count_flops(static_cast<std::uint64_t>(candidates) * 9);
      for (std::uint32_t a = begin; a < end; ++a) {
        const PointId candidate = view.lookup[a];
        if (dist2(point, view.points[candidate]) <= eps2) emit(candidate);
      }
      return;
    }
    // Subsampled (see the 2-D scan_range): dropped candidates cost the
    // 4 B id read + ~4-op hash; kept ones add the 12 B point fetch and
    // the 9-op distance test.
    std::uint64_t kept = 0;
    for (std::uint32_t a = begin; a < end; ++a) {
      const PointId candidate = view.lookup[a];
      if (!quality.keep_pair(pid, candidate)) continue;
      ++kept;
      if (dist2(point, view.points[candidate]) <= eps2) emit(candidate);
    }
    ctx.count_global_bytes(
        static_cast<std::uint64_t>(candidates) * sizeof(PointId) +
        kept * sizeof(Point3));
    ctx.count_flops(static_cast<std::uint64_t>(candidates) * 4 + kept * 9);
  };

  const std::uint32_t cell = view.params.linear_cell(point);
  std::array<std::uint32_t, 27> cell_ids{};
  unsigned ncells = 0;
  if (mode == ScanMode::kHalf) {
    const CellRange own = view.cells[cell];
    ctx.count_global_bytes(sizeof(CellRange));
    const PointId* first = view.lookup + own.begin;
    const PointId* last = view.lookup + own.end;
    const PointId* lo = std::lower_bound(first, last, pid);
    unsigned probes = 0;
    while ((1u << probes) < own.count()) ++probes;
    ctx.count_global_bytes(static_cast<std::uint64_t>(probes) *
                           sizeof(PointId));
    scan_range(static_cast<std::uint32_t>(lo - view.lookup), own.end);
    ncells = get_forward_neighbor_cells3(view.params, cell, cell_ids);
  } else {
    ncells = get_neighbor_cells3(view.params, cell, cell_ids);
  }
  for (unsigned c = 0; c < ncells; ++c) {
    const CellRange range = view.cells[cell_ids[c]];
    ctx.count_global_bytes(sizeof(CellRange));
    scan_range(range.begin, range.end);
  }
}

struct GlobalKernel3Body {
  GridView3 view;
  float eps2;
  BatchSpec batch;
  ResultSinkView sink;
  ScanMode mode;
  QualitySpec quality;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.num_points) return;
    const auto pid = static_cast<PointId>(i);
    const Point3 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point3));
    StagedSink staged(sink);
    for_each_neighbor3(view, mode, pid, point, eps2, quality, ctx,
                       [&](PointId candidate) {
                         staged.push(NeighborPair{pid, candidate}, ctx);
                       });
    staged.flush(ctx);
  }
};

/// 3-D pass-1 count kernel for the two-pass CSR builder: thread g writes
/// its batch point's neighbor count to counts[g]. No atomics.
struct CountBatch3Body {
  GridView3 view;
  float eps2;
  BatchSpec batch;
  std::uint32_t* counts;
  ScanMode mode;
  QualitySpec quality;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.num_points) return;
    const auto pid = static_cast<PointId>(i);
    const Point3 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point3));
    std::uint32_t matches = 0;
    for_each_neighbor3(view, mode, pid, point, eps2, quality, ctx,
                       [&](PointId) { ++matches; });
    counts[gid] = matches;
    ctx.count_global_bytes(sizeof(std::uint32_t));
  }
};

/// 3-D pass-2 fill kernel: writes neighbor ids at the exact CSR offsets
/// produced by scanning the pass-1 counts. No atomics, no sort.
struct FillCsr3Body {
  GridView3 view;
  float eps2;
  BatchSpec batch;
  const std::uint32_t* offsets;
  PointId* values;
  ScanMode mode;
  QualitySpec quality;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.num_points) return;
    const auto pid = static_cast<PointId>(i);
    const Point3 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point3) + sizeof(std::uint32_t));
    PointId* out = values + offsets[gid];
    for_each_neighbor3(view, mode, pid, point, eps2, quality, ctx,
                       [&](PointId candidate) {
                         *out++ = candidate;
                         ctx.count_global_bytes(sizeof(PointId));
                       });
  }
};

/// Local parked-pair buffer length of the fused kernel; mirrors the 2-D
/// kernel's spill size (kernels.cpp keeps its own copy file-locally).
constexpr unsigned kFusedSpill3 = 256;

/// 3-D fused no-table body — same degree/union semantics as the 2-D
/// FusedKernelBody, traversing via for_each_neighbor3. Own contributions
/// accumulate in a register (one fetch_add at thread end); under kHalf
/// each cross pair's back contribution to the partner's degree is a
/// per-pair fetch_add whose return value is a monotone lower bound used
/// for the both-core check. Pairs not yet provably core-core are parked.
struct FusedKernel3Body {
  GridView3 view;
  float eps2;
  BatchSpec batch;
  ScanMode mode;
  QualitySpec quality;
  StreamingDbscan::FusedView fu;
  StreamingDbscan* sink;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t i = gid * batch.num_batches + batch.batch;
    if (i >= view.num_points) return;
    const auto pid = static_cast<PointId>(i);
    const Point3 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point3));

    NeighborPair local[kFusedSpill3];
    unsigned nlocal = 0;
    std::uint32_t own_degree = 0;
    std::uint64_t seen = 0;
    std::uint64_t streamed = 0;

    for_each_neighbor3(view, mode, pid, point, eps2, quality, ctx,
                       [&](PointId cand) {
      ++own_degree;  // self pair included: degree counts the point itself
      if (cand == pid) return;
      std::uint32_t deg_v;
      if (mode == ScanMode::kHalf) {
        deg_v = fu.degree[cand].fetch_add(1, std::memory_order_relaxed) + 1;
        ctx.count_atomic();
      } else {
        // Full traversals see each pair twice; the smaller-id side owns
        // the edge work and partners count their own rows.
        if (pid > cand) return;
        deg_v = fu.degree[cand].load(std::memory_order_relaxed);
        ctx.count_global_bytes(sizeof(std::uint32_t));
      }
      ++seen;
      const std::uint32_t deg_p =
          fu.degree[pid].load(std::memory_order_relaxed) + own_degree;
      ctx.count_global_bytes(sizeof(std::uint32_t));
      if (deg_p >= fu.required && deg_v >= fu.required) {
        fu.uf->unite(pid, cand);
        ctx.count_atomic();
        ctx.count_global_bytes(2 * sizeof(std::uint32_t));
        ++streamed;
      } else {
        local[nlocal++] = NeighborPair{pid, cand};
        ctx.count_global_bytes(sizeof(NeighborPair));  // parked-edge write
        if (nlocal == kFusedSpill3) {
          sink->ingest_fused(std::span<const NeighborPair>(local, nlocal), 0,
                             0);
          nlocal = 0;
        }
      }
    });

    if (own_degree != 0) {
      fu.degree[pid].fetch_add(own_degree, std::memory_order_relaxed);
      ctx.count_atomic();
    }
    if (nlocal != 0 || seen != 0) {
      sink->ingest_fused(std::span<const NeighborPair>(local, nlocal), seen,
                         streamed);
    }
  }
};

struct CountKernel3Body {
  GridView3 view;
  float eps2;
  std::uint32_t stride;
  std::atomic<std::uint64_t>* total;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i =
        static_cast<std::uint64_t>(ctx.global_id()) * stride;
    if (i >= view.num_points) return;
    const Point3 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point3));
    std::uint64_t matches = 0;
    std::array<std::uint32_t, 27> cell_ids{};
    const unsigned n = get_neighbor_cells3(
        view.params, view.params.linear_cell(point), cell_ids);
    for (unsigned c = 0; c < n; ++c) {
      const CellRange range = view.cells[cell_ids[c]];
      ctx.count_global_bytes(sizeof(CellRange) +
                             std::uint64_t(range.count()) *
                                 (sizeof(PointId) + sizeof(Point3)));
      ctx.count_flops(std::uint64_t(range.count()) * 9);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        matches += dist2(point, view.points[view.lookup[a]]) <= eps2;
      }
    }
    total->fetch_add(matches, std::memory_order_relaxed);
    ctx.count_atomic();
  }
};

}  // namespace

cudasim::KernelStats run_calc_global3(cudasim::Device& device,
                                      const GridView3& view, float eps,
                                      BatchSpec batch, ResultSinkView sink,
                                      ScanMode mode, unsigned block_size,
                                      QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.num_points);
  const unsigned grid = (points + block_size - 1) / block_size;
  return cudasim::run_flat_kernel(
      device, grid, block_size,
      GlobalKernel3Body{view, eps * eps, batch, sink, mode, quality});
}

cudasim::KernelStats run_count_batch3(cudasim::Device& device,
                                      const GridView3& view, float eps,
                                      BatchSpec batch, std::uint32_t* counts,
                                      ScanMode mode, unsigned block_size,
                                      QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.num_points);
  const unsigned grid = (points + block_size - 1) / block_size;
  return cudasim::run_flat_kernel(
      device, grid, block_size,
      CountBatch3Body{view, eps * eps, batch, counts, mode, quality});
}

cudasim::KernelStats run_fill_csr3(cudasim::Device& device,
                                   const GridView3& view, float eps,
                                   BatchSpec batch,
                                   const std::uint32_t* offsets,
                                   PointId* values, ScanMode mode,
                                   unsigned block_size, QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.num_points);
  const unsigned grid = (points + block_size - 1) / block_size;
  return cudasim::run_flat_kernel(
      device, grid, block_size,
      FillCsr3Body{view, eps * eps, batch, offsets, values, mode, quality});
}

cudasim::KernelStats run_fused_batch3(cudasim::Device& device,
                                      const GridView3& view, float eps,
                                      BatchSpec batch, StreamingDbscan& sink,
                                      ScanMode mode, unsigned block_size,
                                      QualitySpec quality) {
  const std::uint32_t points = batch.points_in_batch(view.num_points);
  const unsigned grid = (points + block_size - 1) / block_size;
  return cudasim::run_flat_kernel(
      device, grid, block_size,
      FusedKernel3Body{view, eps * eps, batch, mode, quality,
                       sink.fused_view(), &sink});
}

std::uint64_t run_count_kernel3(cudasim::Device& device, const GridView3& view,
                                float eps, std::uint32_t sample_stride,
                                cudasim::KernelStats* stats_out,
                                unsigned block_size) {
  if (sample_stride == 0) sample_stride = 1;
  std::atomic<std::uint64_t> total{0};
  const std::uint64_t samples =
      (view.num_points + sample_stride - 1) / sample_stride;
  const unsigned grid =
      static_cast<unsigned>((samples + block_size - 1) / block_size);
  const auto stats = cudasim::run_flat_kernel(
      device, grid, block_size,
      CountKernel3Body{view, eps * eps, sample_stride, &total});
  if (stats_out != nullptr) *stats_out = stats;
  return total.load(std::memory_order_relaxed);
}

}  // namespace hdbscan::gpu
