#include "gpu/gpu_dbscan.hpp"

#include <array>
#include <atomic>
#include <limits>
#include <span>
#include <vector>

#include "common/timer.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/kernel.hpp"
#include "cudasim/sort.hpp"
#include "cudasim/stream.hpp"
#include "gpu/device_index.hpp"

namespace hdbscan::gpu {

namespace {

constexpr std::uint32_t kNoLabel = std::numeric_limits<std::uint32_t>::max();
constexpr unsigned kBlock = 256;

/// Kernel 1: core identification (thread per point).
struct CoreKernel {
  GridView view;
  float eps2;
  std::uint32_t required;
  std::uint8_t* core;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i = ctx.global_id();
    if (i >= view.num_points) return;
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));
    std::uint32_t count = 0;
    std::array<std::uint32_t, 9> cells{};
    const unsigned n = get_neighbor_cells(
        view.params, view.params.linear_cell(point), cells);
    for (unsigned c = 0; c < n; ++c) {
      const CellRange range = view.cells[cells[c]];
      ctx.count_global_bytes(sizeof(CellRange) +
                             std::uint64_t(range.count()) *
                                 (sizeof(PointId) + sizeof(Point2)));
      ctx.count_flops(std::uint64_t(range.count()) * 6);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        count += dist2(point, view.points[view.lookup[a]]) <= eps2;
      }
    }
    core[i] = count >= required;
    ctx.count_global_bytes(1);
  }
};

/// Kernel 2: label seeding (core -> own id, else no label).
struct SeedKernel {
  const std::uint8_t* core;
  std::uint32_t* labels;
  std::uint32_t n;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i = ctx.global_id();
    if (i >= n) return;
    labels[i] = core[i] ? static_cast<std::uint32_t>(i) : kNoLabel;
    ctx.count_global_bytes(5);
  }
};

/// Kernel 3: one min-label propagation sweep over core-core edges plus a
/// pointer-jumping shortcut (labels are point ids, so label chasing
/// compresses chains — Shiloach-Vishkin style).
struct PropagateKernel {
  GridView view;
  float eps2;
  const std::uint8_t* core;
  std::uint32_t* labels;
  std::atomic<std::uint32_t>* changed;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i = ctx.global_id();
    if (i >= view.num_points || !core[i]) return;
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2) + 1);
    std::uint32_t best = labels[i];
    std::array<std::uint32_t, 9> cells{};
    const unsigned n = get_neighbor_cells(
        view.params, view.params.linear_cell(point), cells);
    for (unsigned c = 0; c < n; ++c) {
      const CellRange range = view.cells[cells[c]];
      ctx.count_global_bytes(sizeof(CellRange) +
                             std::uint64_t(range.count()) *
                                 (sizeof(PointId) + sizeof(Point2) + 5));
      ctx.count_flops(std::uint64_t(range.count()) * 6);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        const PointId j = view.lookup[a];
        if (!core[j] || dist2(point, view.points[j]) > eps2) continue;
        best = std::min(best, labels[j]);
      }
    }
    // Pointer jump: my label is a point id whose label may be smaller.
    best = std::min(best, labels[best]);
    ctx.count_global_bytes(sizeof(std::uint32_t));
    if (best < labels[i]) {
      // Atomic min via CAS (the simulator's global-memory atomic).
      std::atomic_ref<std::uint32_t> slot(labels[i]);
      std::uint32_t cur = slot.load(std::memory_order_relaxed);
      while (best < cur &&
             !slot.compare_exchange_weak(cur, best,
                                         std::memory_order_relaxed)) {
      }
      ctx.count_atomic();
      changed->store(1, std::memory_order_relaxed);
    }
  }
};

/// Kernel 4: border assignment (smallest core neighbor's label).
struct BorderKernel {
  GridView view;
  float eps2;
  const std::uint8_t* core;
  std::uint32_t* labels;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i = ctx.global_id();
    if (i >= view.num_points || core[i]) return;
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2) + 1);
    std::uint32_t best = kNoLabel;
    std::array<std::uint32_t, 9> cells{};
    const unsigned n = get_neighbor_cells(
        view.params, view.params.linear_cell(point), cells);
    for (unsigned c = 0; c < n; ++c) {
      const CellRange range = view.cells[cells[c]];
      ctx.count_global_bytes(sizeof(CellRange) +
                             std::uint64_t(range.count()) *
                                 (sizeof(PointId) + sizeof(Point2) + 5));
      ctx.count_flops(std::uint64_t(range.count()) * 6);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        const PointId j = view.lookup[a];
        if (!core[j] || dist2(point, view.points[j]) > eps2) continue;
        best = std::min(best, labels[j]);
      }
    }
    labels[i] = best;
    ctx.count_global_bytes(sizeof(std::uint32_t));
  }
};

}  // namespace

ClusterResult gpu_dbscan(cudasim::Device& device, const GridIndex& index,
                         float eps, int minpts, GpuDbscanReport* report) {
  hdbscan::WallTimer wall;
  GpuDbscanReport local;

  cudasim::Stream stream(device);
  GridDeviceIndex device_index(device, stream, index);
  stream.synchronize();
  const GridView view = device_index.view();
  const std::uint32_t n = view.num_points;
  const unsigned grid_dim = (n + kBlock - 1) / kBlock;
  const float eps2 = eps * eps;

  const std::uint64_t upload_bytes =
      index.points.size() * sizeof(Point2) +
      index.cells.size() * sizeof(CellRange) +
      index.lookup.size() * sizeof(PointId) +
      index.nonempty_cells.size() * sizeof(std::uint32_t);
  local.modeled_seconds +=
      cudasim::modeled_transfer_seconds(device.config(), upload_bytes, false);

  cudasim::DeviceBuffer<std::uint8_t> core(device, n);
  cudasim::DeviceBuffer<std::uint32_t> labels(device, n);

  auto stats = cudasim::run_flat_kernel(
      device, grid_dim, kBlock,
      CoreKernel{view, eps2, static_cast<std::uint32_t>(minpts),
                 core.device_data()});
  local.modeled_seconds += stats.modeled_seconds;

  stats = cudasim::run_flat_kernel(
      device, grid_dim, kBlock,
      SeedKernel{core.device_data(), labels.device_data(), n});
  local.modeled_seconds += stats.modeled_seconds;

  // Iterated min-label propagation until fixpoint.
  std::atomic<std::uint32_t> changed{1};
  while (changed.load(std::memory_order_relaxed) != 0) {
    changed.store(0, std::memory_order_relaxed);
    stats = cudasim::run_flat_kernel(
        device, grid_dim, kBlock,
        PropagateKernel{view, eps2, core.device_data(), labels.device_data(),
                        &changed});
    local.modeled_seconds += stats.modeled_seconds;
    ++local.propagation_iterations;
  }

  stats = cudasim::run_flat_kernel(
      device, grid_dim, kBlock,
      BorderKernel{view, eps2, core.device_data(), labels.device_data()});
  local.modeled_seconds += stats.modeled_seconds;

  // Only the labels cross the bus — through pooled pinned staging, so the
  // transfer runs at the page-locked rate and the lock cost amortizes
  // across calls on the same device.
  cudasim::PooledPinnedBuffer<std::uint32_t> label_staging(device, n);
  device.blocking_transfer(label_staging.data(), labels.device_data(),
                           n * sizeof(std::uint32_t), /*to_device=*/false,
                           /*pinned_host=*/true);
  const std::span<const std::uint32_t> host_labels = label_staging.span();
  local.d2h_bytes = n * sizeof(std::uint32_t);
  local.modeled_seconds +=
      cudasim::modeled_transfer_seconds(device.config(), local.d2h_bytes,
                                        true);
  if (label_staging.fresh()) {
    local.modeled_seconds += cudasim::modeled_pinned_alloc_seconds(
        device.config(), local.d2h_bytes);
  }

  // Host: renumber component representatives into dense cluster ids.
  ClusterResult result;
  result.labels.assign(n, kNoise);
  std::vector<std::int32_t> rep_label(n, -1);
  std::int32_t next_cluster = 0;
  const auto core_view = core.unsafe_host_view();
  for (std::uint32_t i = 0; i < n; ++i) {
    local.core_points += core_view[i];
    const std::uint32_t rep = host_labels[i];
    if (rep == kNoLabel) continue;  // noise
    if (rep_label[rep] < 0) rep_label[rep] = next_cluster++;
    result.labels[i] = rep_label[rep];
  }
  result.num_clusters = next_cluster;

  result.finalize_noise_count();
  local.wall_seconds = wall.seconds();
  if (report != nullptr) *report = local;
  return result;
}

}  // namespace hdbscan::gpu
