// Device-resident copy of the packed BVH (IndexBackend::kBvh): the node
// array, the leaf-packed candidate ids/points, and the id-ordered point
// array all live in global memory; traversal kernels receive a BvhView of
// the device pointers. Mirrors GridDeviceIndex for the grid backend.
#pragma once

#include <cstdint>

#include "cudasim/buffer.hpp"
#include "cudasim/stream.hpp"
#include "index/bvh.hpp"

namespace hdbscan::gpu {

class BvhDeviceIndex {
 public:
  /// Allocates device buffers and enqueues the H2D uploads on `stream`
  /// (pageable host memory — the tree is uploaded once per epsilon, like
  /// the grid index).
  BvhDeviceIndex(cudasim::Device& device, cudasim::Stream& stream,
                 const BvhIndex& host_index)
      : root_(host_index.root),
        num_nodes_(static_cast<std::uint32_t>(host_index.nodes.size())),
        num_points_(static_cast<std::uint32_t>(host_index.points.size())),
        num_query_(host_index.num_query),
        nodes_(device, host_index.nodes.size()),
        points_(device, host_index.points.size()),
        leaf_ids_(device, host_index.leaf_ids.size()),
        leaf_points_(device, host_index.leaf_points.size()) {
    stream.memcpy_to_device(nodes_, host_index.nodes.data(),
                            host_index.nodes.size());
    stream.memcpy_to_device(points_, host_index.points.data(),
                            host_index.points.size());
    stream.memcpy_to_device(leaf_ids_, host_index.leaf_ids.data(),
                            host_index.leaf_ids.size());
    stream.memcpy_to_device(leaf_points_, host_index.leaf_points.data(),
                            host_index.leaf_points.size());
  }

  [[nodiscard]] BvhView view() const noexcept {
    return BvhView{nodes_.device_data(),   num_nodes_,
                   root_,                  points_.device_data(),
                   leaf_ids_.device_data(), leaf_points_.device_data(),
                   num_points_,            num_query_};
  }

  [[nodiscard]] std::uint32_t num_points() const noexcept {
    return num_points_;
  }

  /// Bytes shipped over PCIe by the constructor's uploads (the fixed
  /// modeled cost the planner attributes to the index).
  [[nodiscard]] std::size_t upload_bytes() const noexcept {
    return nodes_.size() * sizeof(BvhNode) + points_.size() * sizeof(Point2) +
           leaf_ids_.size() * sizeof(PointId) +
           leaf_points_.size() * sizeof(Point2);
  }

 private:
  std::uint32_t root_;
  std::uint32_t num_nodes_;
  std::uint32_t num_points_;
  std::uint32_t num_query_;
  cudasim::DeviceBuffer<BvhNode> nodes_;
  cudasim::DeviceBuffer<Point2> points_;
  cudasim::DeviceBuffer<PointId> leaf_ids_;
  cudasim::DeviceBuffer<Point2> leaf_points_;
};

}  // namespace hdbscan::gpu
