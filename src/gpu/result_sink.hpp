// Device-resident result set with atomic append (paper Alg. 2/3 line
// "atomic: gpuResultSet <- gpuResultSet U result").
//
// The kernels write (key, value) neighbor pairs through an atomically
// incremented cursor. If a batch produces more pairs than the buffer can
// hold, the overflow flag is raised instead of writing out of bounds — the
// failure mode the batching scheme's alpha over-estimation (paper Eq. 1)
// exists to prevent.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/types.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/kernel.hpp"

namespace hdbscan::gpu {

/// Non-owning view handed to kernels.
struct ResultSinkView {
  NeighborPair* slots = nullptr;
  std::uint64_t capacity = 0;
  std::atomic<std::uint64_t>* count = nullptr;
  std::atomic<bool>* overflow = nullptr;

  /// Atomic append; returns false (and raises the overflow flag) when the
  /// buffer is full. `ctx` is charged one atomic op and the pair write.
  bool push(const NeighborPair& pair, cudasim::ThreadCtx& ctx) const noexcept {
    ctx.count_atomic();
    const std::uint64_t idx =
        count->fetch_add(1, std::memory_order_relaxed);
    if (idx >= capacity) {
      overflow->store(true, std::memory_order_relaxed);
      return false;
    }
    slots[idx] = pair;
    ctx.count_global_bytes(sizeof(NeighborPair));
    return true;
  }
};

/// Owning device-side result buffer for one batch / stream.
class ResultSetDevice {
 public:
  ResultSetDevice(cudasim::Device& device, std::uint64_t capacity)
      : pairs_(device, capacity) {}

  [[nodiscard]] ResultSinkView view() noexcept {
    return ResultSinkView{pairs_.device_data(), pairs_.size(), &count_,
                          &overflow_};
  }

  /// Number of pairs produced by the kernel (may exceed capacity when the
  /// buffer overflowed; callers must check overflowed() first).
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool overflowed() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return pairs_.size();
  }

  [[nodiscard]] cudasim::DeviceBuffer<NeighborPair>& pairs() noexcept {
    return pairs_;
  }

  /// Reset before reusing the buffer for the next batch.
  void reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    overflow_.store(false, std::memory_order_relaxed);
  }

 private:
  cudasim::DeviceBuffer<NeighborPair> pairs_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<bool> overflow_{false};
};

}  // namespace hdbscan::gpu
