// Device-resident result set with atomic append (paper Alg. 2/3 line
// "atomic: gpuResultSet <- gpuResultSet U result").
//
// The kernels write (key, value) neighbor pairs through an atomically
// incremented cursor. Contention control: instead of one fetch_add per
// pair, kernels stage pairs in a thread-local buffer (registers/shared
// memory on real hardware) and reserve k slots with a single fetch_add per
// flush — the warp-aggregated / batched buffer-reservation idiom of
// Gowanlock's hybrid KNN-join. If a batch produces more pairs than the
// buffer can hold, the overflow flag is raised instead of writing out of
// bounds — the failure mode the batching scheme's alpha over-estimation
// (paper Eq. 1) exists to prevent.
//
// Accounting terms: `produced()` is the raw cursor (how many pairs the
// kernel tried to emit; may exceed capacity after an overflowed batch),
// `stored()` clamps to capacity (how many slots actually hold data — the
// only safe read extent).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>

#include "common/types.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/kernel.hpp"

namespace hdbscan::gpu {

/// Non-owning view handed to kernels.
struct ResultSinkView {
  NeighborPair* slots = nullptr;
  std::uint64_t capacity = 0;
  std::atomic<std::uint64_t>* cursor = nullptr;
  std::atomic<bool>* overflow = nullptr;

  /// Bulk reservation of `k` slots: one atomic op regardless of k. Returns
  /// the first reserved index; raises the overflow flag when the
  /// reservation extends past capacity (slots beyond it must not be
  /// written — store() enforces that bound).
  std::uint64_t reserve(std::uint64_t k, cudasim::ThreadCtx& ctx) const
      noexcept {
    ctx.count_atomic();
    const std::uint64_t start = cursor->fetch_add(k, std::memory_order_relaxed);
    if (start + k > capacity) {
      overflow->store(true, std::memory_order_relaxed);
    }
    return start;
  }

  /// Writes one reserved slot; out-of-capacity indexes (possible only
  /// after an overflowed reservation) are dropped.
  void store(std::uint64_t idx, const NeighborPair& pair,
             cudasim::ThreadCtx& ctx) const noexcept {
    if (idx < capacity) {
      slots[idx] = pair;
      ctx.count_global_bytes(sizeof(NeighborPair));
    }
  }

  /// Single-pair append (one atomic per pair); returns false when the pair
  /// did not fit. Kept for callers without a staging buffer — hot kernels
  /// should use StagedSink instead.
  bool push(const NeighborPair& pair, cudasim::ThreadCtx& ctx) const noexcept {
    const std::uint64_t idx = reserve(1, ctx);
    store(idx, pair, ctx);
    return idx < capacity;
  }
};

/// Thread-local staging buffer in front of a ResultSinkView: pairs
/// accumulate locally (modeled as shared-memory traffic, like a per-block
/// staging tile) and are flushed with one bulk cursor reservation — one
/// global atomic per kStageCapacity pairs instead of one per pair.
/// Callers MUST flush() before the owning thread finishes.
class StagedSink {
 public:
  static constexpr std::size_t kStageCapacity = 128;

  explicit StagedSink(const ResultSinkView& sink) noexcept : sink_(sink) {}

  void push(const NeighborPair& pair, cudasim::ThreadCtx& ctx) noexcept {
    stage_[count_++] = pair;
    ctx.count_shared_bytes(sizeof(NeighborPair));
    if (count_ == kStageCapacity) flush(ctx);
  }

  /// Dual-row append for ScanMode::kHalf: the pair was distance-tested
  /// once but qualifies both rows, so emit (a, b) and its transpose
  /// (b, a) together. Both land in the same staging buffer, so the
  /// amortized cursor cost is unchanged.
  void push_dual(PointId a, PointId b, cudasim::ThreadCtx& ctx) noexcept {
    push(NeighborPair{a, b}, ctx);
    push(NeighborPair{b, a}, ctx);
  }

  void flush(cudasim::ThreadCtx& ctx) noexcept {
    if (count_ == 0) return;
    const std::uint64_t start = sink_.reserve(count_, ctx);
    for (std::size_t i = 0; i < count_; ++i) {
      sink_.store(start + i, stage_[i], ctx);
    }
    ctx.count_shared_bytes(count_ * sizeof(NeighborPair));
    count_ = 0;
  }

  [[nodiscard]] std::size_t staged() const noexcept { return count_; }

 private:
  ResultSinkView sink_;
  std::array<NeighborPair, kStageCapacity> stage_;
  std::size_t count_ = 0;
};

/// Owning device-side result buffer for one batch / stream. The backing
/// storage is checked out of the device's buffer pool, so per-batch and
/// per-variant construction stops paying device malloc/free.
class ResultSetDevice {
 public:
  ResultSetDevice(cudasim::Device& device, std::uint64_t capacity)
      : pairs_(device, capacity) {}

  [[nodiscard]] ResultSinkView view() noexcept {
    return ResultSinkView{pairs_.device_data(), pairs_.size(), &cursor_,
                          &overflow_};
  }

  /// Number of pairs the kernel produced (raw cursor). May exceed
  /// capacity() when the buffer overflowed; never use it as a read extent
  /// — that is what stored() is for.
  [[nodiscard]] std::uint64_t produced() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Number of pairs actually resident in the buffer:
  /// min(produced, capacity). Safe as a read extent even after overflow.
  [[nodiscard]] std::uint64_t stored() const noexcept {
    return std::min<std::uint64_t>(produced(), pairs_.size());
  }

  /// Deprecated alias for produced(); see the produced()/stored()
  /// distinction above before using the value as a read extent.
  [[nodiscard]] std::uint64_t count() const noexcept { return produced(); }

  [[nodiscard]] bool overflowed() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return pairs_.size();
  }

  [[nodiscard]] cudasim::PooledDeviceBuffer<NeighborPair>& pairs() noexcept {
    return pairs_;
  }

  /// Reset before reusing the buffer for the next batch.
  void reset() noexcept {
    cursor_.store(0, std::memory_order_relaxed);
    overflow_.store(false, std::memory_order_relaxed);
  }

 private:
  cudasim::PooledDeviceBuffer<NeighborPair> pairs_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<bool> overflow_{false};
};

}  // namespace hdbscan::gpu
