// 3-D epsilon-neighborhood kernels: GPUCalcGlobal generalized to the
// 27-cell neighborhood, plus the count kernel for result sizing.
#pragma once

#include <cstdint>

#include "cudasim/device.hpp"
#include "cudasim/kernel.hpp"
#include "gpu/kernels.hpp"  // BatchSpec
#include "gpu/result_sink.hpp"
#include "index/grid_index3.hpp"

namespace hdbscan::gpu {

/// 3-D GPUCalcGlobal, synchronous; same strided batching as the 2-D kernel.
/// ScanMode::kHalf tests each pair once and emits forward rows only (see
/// run_calc_global).
cudasim::KernelStats run_calc_global3(cudasim::Device& device,
                                      const GridView3& view, float eps,
                                      BatchSpec batch, ResultSinkView sink,
                                      ScanMode mode = ScanMode::kFull,
                                      unsigned block_size = kDefaultBlockSize,
                                      QualitySpec quality = {});

/// 3-D two-pass CSR builder, pass 1: per-point neighbor counts (see the
/// 2-D run_count_batch). kHalf counts forward rows only.
cudasim::KernelStats run_count_batch3(cudasim::Device& device,
                                      const GridView3& view, float eps,
                                      BatchSpec batch, std::uint32_t* counts,
                                      ScanMode mode = ScanMode::kFull,
                                      unsigned block_size = kDefaultBlockSize,
                                      QualitySpec quality = {});

/// 3-D two-pass CSR builder, pass 2: fill into exact CSR slots (see the
/// 2-D run_fill_csr). `mode` must match the count pass.
cudasim::KernelStats run_fill_csr3(cudasim::Device& device,
                                   const GridView3& view, float eps,
                                   BatchSpec batch,
                                   const std::uint32_t* offsets,
                                   PointId* values,
                                   ScanMode mode = ScanMode::kFull,
                                   unsigned block_size = kDefaultBlockSize,
                                   QualitySpec quality = {});

/// 3-D fused no-table clustering kernel (see the 2-D run_fused_batch):
/// counts degrees and unions both-core edges directly into `sink`'s
/// union-find during the traversal — no counts buffer, no CSR values, no
/// D2H result transfer. Undecidable pairs are parked in the sink and
/// settled by finalize(). Labels after sink.finalize() are bit-identical
/// to the batch-table path.
cudasim::KernelStats run_fused_batch3(cudasim::Device& device,
                                      const GridView3& view, float eps,
                                      BatchSpec batch, StreamingDbscan& sink,
                                      ScanMode mode = ScanMode::kHalf,
                                      unsigned block_size = kDefaultBlockSize,
                                      QualitySpec quality = {});

/// 3-D neighbor-count kernel (estimator / exact census with stride 1).
std::uint64_t run_count_kernel3(cudasim::Device& device, const GridView3& view,
                                float eps, std::uint32_t sample_stride,
                                cudasim::KernelStats* stats_out = nullptr,
                                unsigned block_size = kDefaultBlockSize);

}  // namespace hdbscan::gpu
