#include "service/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/timer.hpp"
#include "core/cell_graph.hpp"
#include "core/estimator.hpp"
#include "core/fused_clustering.hpp"
#include "core/neighbor_table_builder.hpp"
#include "dbscan/batch_sink.hpp"
#include "dbscan/dbscan.hpp"
#include "dbscan/streaming_dbscan.hpp"
#include "index/grid_index.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace hdbscan::service {

namespace {

std::uint32_t eps_bits(float eps) noexcept {
  std::uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(eps));
  std::memcpy(&bits, &eps, sizeof(bits));
  return bits;
}

/// The quality a job is actually served under: an exact (default) spec
/// inherits the service policy's quality, so an operator can flip the
/// whole service to a cheaper mode without touching clients; a non-exact
/// spec overrides the policy for that job alone.
QualitySpec effective_quality(const JobSpec& spec,
                              const BatchPolicy& policy) noexcept {
  return spec.quality.mode == ClusterQuality::kExact ? policy.quality
                                                     : spec.quality;
}

/// Cache key for a group's build. Rate/seed only discriminate subsampled
/// entries; for exact (and the never-cached cell-graph) they stay at the
/// Key defaults so exact keys are unchanged from before the quality knob.
TableCache::Key make_key(const JobSpec& lead, const QualitySpec& q,
                         const BatchPolicy& policy) {
  TableCache::Key key{lead.dataset, eps_bits(lead.eps), policy.index_backend,
                      policy.scan_mode};
  key.quality = q.mode;
  if (q.mode == ClusterQuality::kSubsampled) {
    key.sample_rate_bits = q.sample_rate_bits();
    key.sample_seed = q.seed;
  }
  return key;
}

void publish_outcome(JobState state) {
  obs::Registry::global()
      .counter("service_requests",
               std::string("outcome=") + job_state_name(state))
      .add(1);
}

/// Chronological order stage timelines are laid out in (the enum orders
/// by attribution bucket, not time).
constexpr std::array<Stage, kNumStages> kStageTimeline = {
    Stage::kAdmission, Stage::kQueueWait,   Stage::kCache,
    Stage::kBuild,     Stage::kStreamUnion, Stage::kFinalize};

/// Emits one synthetic "stage" span per non-empty stage, laid end to end
/// from the request's submit stamp, under the request's context — the
/// trace-side twin of JobResult::stages that `hdbscan_cli explain` reads.
void emit_stage_spans(const RequestContext& ctx, double submit_us,
                      const StageBreakdown& stages) {
  obs::Tracer& t = obs::Tracer::global();
  if (!obs::kTraceCompiled || !t.enabled()) return;
  RequestScope scope(ctx);
  double at_us = submit_us;
  double model_at_us = 0.0;
  for (Stage s : kStageTimeline) {
    const double wall = stages.wall(s);
    const double modeled =
        stages.modeled_seconds[static_cast<std::size_t>(s)];
    if (wall <= 0.0 && modeled <= 0.0) continue;
    const double dur_us = wall * 1e6;
    const double model_dur_us = modeled * 1e6;
    t.record(obs::EventType::kSpan, "stage", stage_name(s), at_us, dur_us,
             model_at_us, model_dur_us > 0.0 ? model_dur_us : -1.0, 0.0);
    at_us += dur_us;
    model_at_us += model_dur_us;
  }
}

/// Remaps index-order labels back to input order (the service returns
/// labels the caller can line up with the registered points).
std::vector<std::int32_t> unmap(const std::vector<std::int32_t>& indexed,
                                const std::vector<PointId>& original_ids) {
  std::vector<std::int32_t> out(indexed.size());
  for (std::size_t i = 0; i < indexed.size(); ++i) {
    out[original_ids[i]] = indexed[i];
  }
  return out;
}

}  // namespace

ClusterService::ClusterService(std::vector<cudasim::Device*> devices,
                               ServiceOptions options)
    : devices_(std::move(devices)),
      options_(options),
      cache_(options.cache_bytes_budget),
      breaker_(devices_.size(), options.breaker_failure_threshold,
               options.breaker_cooldown_dispatches) {
  for (cudasim::Device* d : devices_) {
    if (d == nullptr) {
      throw std::invalid_argument("ClusterService: null device");
    }
  }
}

void ClusterService::register_dataset(const std::string& name,
                                      std::vector<Point2> points,
                                      float reference_eps) {
  if (points.empty()) {
    throw std::invalid_argument("register_dataset: empty dataset");
  }
  if (reference_eps <= 0.0f) {
    throw std::invalid_argument("register_dataset: reference_eps must be > 0");
  }
  // Calibration runs outside any client request; give it a request id of
  // its own (tenant "system") so even registration-time spans are
  // attributable — no span in a service run should be anonymous.
  RequestContext reg_ctx;
  reg_ctx.request_id = mint_request_id();
  reg_ctx.set_tenant("system");
  RequestScope reg_scope(reg_ctx);
  Dataset ds;
  ds.points = std::move(points);
  ds.ref_eps = reference_eps;
  GridIndex index = build_grid_index(ds.points, reference_eps);
  // Calibrate with the estimation kernel over the host-resident view (no
  // index upload): one cheap device op per dataset, at registration — the
  // admission decision itself is pure arithmetic afterwards.
  for (cudasim::Device* d : devices_) {
    if (d->lost()) continue;
    try {
      const ResultSizeEstimate est = estimate_result_size(
          *d, GridView::of(index), reference_eps,
          options_.policy.sample_fraction, options_.policy.block_size);
      ds.ref_pairs = est.estimated_total;
      break;
    } catch (const cudasim::SimError&) {
      // Faulted during calibration; try the next device or fall through.
    }
  }
  if (ds.ref_pairs == 0) {
    // No device could run the kernel: a 1-in-16 strided host sample of
    // the same grid gives the reference figure.
    const NeighborTable sample = build_neighbor_table_host_strided(
        index, reference_eps, 0, 16, ScanMode::kFull);
    ds.ref_pairs = std::max<std::uint64_t>(1, sample.total_pairs() * 16);
  }
  std::lock_guard lock(mutex_);
  datasets_[name] = std::move(ds);
}

std::pair<std::uint64_t, std::uint64_t> ClusterService::price(
    const std::string& dataset, float eps) const {
  const auto it = datasets_.find(dataset);
  if (it == datasets_.end()) return {0, 0};
  const Dataset& ds = it->second;
  // Expected pairs scale with the neighborhood area: (eps / eps_ref)^2.
  const double ratio = static_cast<double>(eps) / ds.ref_eps;
  const auto pairs = static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(ds.ref_pairs) * ratio * ratio));
  const std::uint64_t bytes =
      pairs * sizeof(PointId) +
      ds.points.size() * 2 * sizeof(std::uint32_t);
  return {pairs, bytes};
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

void ClusterService::enqueue_locked(PendingPtr job) {
  const auto cls = static_cast<std::size_t>(job->spec.priority);
  auto& tenant_q = queues_[cls][job->spec.tenant];
  if (tenant_q.empty() &&
      std::find(rr_order_[cls].begin(), rr_order_[cls].end(),
                job->spec.tenant) == rr_order_[cls].end()) {
    rr_order_[cls].push_back(job->spec.tenant);
  }
  queued_bytes_ += job->priced_bytes;
  ++queued_count_;
  tenant_q.push_back(std::move(job));
}

void ClusterService::remove_queued_locked(const Pending& job) {
  queued_bytes_ -= job.priced_bytes;
  --queued_count_;
}

bool ClusterService::shed_for_locked(Priority arriving,
                                     std::uint64_t needed_bytes,
                                     ReplayState& rs) {
  // Evict the most recently queued job of the lowest class strictly below
  // the arrival's — newest-first so long-waiting work keeps its place.
  for (std::size_t cls = 0; cls < static_cast<std::size_t>(arriving); ++cls) {
    std::deque<PendingPtr>* victim_q = nullptr;
    for (auto& [tenant, q] : queues_[cls]) {
      if (q.empty()) continue;
      if (victim_q == nullptr ||
          q.back()->index > victim_q->back()->index) {
        victim_q = &q;
      }
    }
    if (victim_q == nullptr) continue;
    PendingPtr victim = victim_q->back();
    victim_q->pop_back();
    remove_queued_locked(*victim);
    JobResult r;
    r.reject_reason = "shed by higher-priority arrival under " +
                      std::string(needed_bytes != 0 ? "byte budget"
                                                    : "queue depth") +
                      " pressure";
    record_terminal(*victim, rs, JobState::kShed, std::move(r));
    return true;
  }
  return false;
}

void ClusterService::submit_locked(PendingPtr job, ReplayState& rs) {
  // Admission is where a request becomes traceable: mint its id here so
  // even a reject-with-reason carries one.
  job->trace.request_id = mint_request_id();
  job->trace.set_tenant(job->spec.tenant.c_str());
  job->submit_us = obs::Tracer::global().now_us();
  WallTimer admission_timer;
  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.submitted;
    ++tenant_counts_locked(job->spec.tenant).submitted;
  }
  const auto ds = datasets_.find(job->spec.dataset);
  if (ds == datasets_.end()) {
    JobResult r;
    r.reject_reason = "unknown dataset '" + job->spec.dataset + "'";
    job->admission_seconds = admission_timer.seconds();
    record_terminal(*job, rs, JobState::kRejected, std::move(r));
    return;
  }
  const QualitySpec jq = effective_quality(job->spec, options_.policy);
  if (job->spec.fused && jq.mode == ClusterQuality::kCellGraph) {
    JobResult r;
    r.reject_reason =
        "fused is incompatible with cellgraph quality: the cell graph "
        "replaces the traversal kernel the fused path would fuse into";
    job->admission_seconds = admission_timer.seconds();
    record_terminal(*job, rs, JobState::kRejected, std::move(r));
    return;
  }
  if (jq.mode == ClusterQuality::kSubsampled &&
      (jq.sample_rate <= 0.0f || jq.sample_rate > 1.0f)) {
    JobResult r;
    r.reject_reason = "subsampled quality requires sample_rate in (0, 1], got " +
                      std::to_string(jq.sample_rate);
    job->admission_seconds = admission_timer.seconds();
    record_terminal(*job, rs, JobState::kRejected, std::move(r));
    return;
  }
  auto [pairs, bytes] = price(job->spec.dataset, job->spec.eps);
  if (jq.sampled()) {
    // Admission prices what the build will actually emit: a subsampled
    // build keeps ~rate of the pairs, so charging the exact price would
    // reject the very jobs the knob exists to admit.
    pairs = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(pairs) *
                                      jq.sample_rate));
    bytes = pairs * sizeof(PointId) +
            ds->second.points.size() * 2 * sizeof(std::uint32_t);
  }
  job->priced_pairs = pairs;
  job->priced_bytes = bytes;
  rs.results[job->index].priced_pairs = pairs;
  rs.results[job->index].priced_bytes = bytes;

  // One-item minimum: an empty queue admits anything — a single
  // over-budget job must stall admission behind it, never deadlock it.
  if (queued_count_ != 0) {
    while (queued_count_ + 1 > options_.queue_depth_limit) {
      if (!shed_for_locked(job->spec.priority, 0, rs)) {
        JobResult r;
        r.reject_reason =
            "queue depth limit (" +
            std::to_string(options_.queue_depth_limit) + ") reached";
        job->admission_seconds = admission_timer.seconds();
        record_terminal(*job, rs, JobState::kRejected, std::move(r));
        return;
      }
    }
    while (options_.queue_bytes_budget != 0 &&
           queued_bytes_ + bytes > options_.queue_bytes_budget) {
      if (!shed_for_locked(job->spec.priority, bytes, rs)) {
        JobResult r;
        r.reject_reason =
            "queue byte budget (" +
            std::to_string(options_.queue_bytes_budget) +
            " B) would be exceeded by priced " + std::to_string(bytes) +
            " B";
        job->admission_seconds = admission_timer.seconds();
        record_terminal(*job, rs, JobState::kRejected, std::move(r));
        return;
      }
    }
  }
  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.admitted;
  }
  obs::Registry::global()
      .counter("service_requests", "outcome=admitted")
      .add(1);
  job->admission_seconds = admission_timer.seconds();
  enqueue_locked(std::move(job));
  work_available_.notify_one();
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

ClusterService::PendingPtr ClusterService::pop_group(
    std::vector<PendingPtr>& members) {
  std::unique_lock lock(mutex_);
  work_available_.wait(lock, [&] {
    return queued_count_ != 0 || (closed_ && in_flight_groups_ == 0);
  });
  if (queued_count_ == 0) return nullptr;

  PendingPtr leader;
  for (std::size_t cls = kNumClasses; cls-- > 0;) {
    auto& order = rr_order_[cls];
    if (order.empty()) continue;
    for (std::size_t step = 0; step < order.size(); ++step) {
      const std::size_t at = (rr_cursor_[cls] + step) % order.size();
      auto& q = queues_[cls][order[at]];
      if (q.empty()) continue;
      leader = q.front();
      q.pop_front();
      remove_queued_locked(*leader);
      rr_cursor_[cls] = (at + 1) % order.size();
      break;
    }
    if (leader != nullptr) break;
  }
  if (leader == nullptr) return nullptr;  // unreachable; defensive
  const double pickup_us = obs::Tracer::global().now_us();
  leader->pickup_us = pickup_us;

  if (options_.coalesce) {
    // Same-(dataset, eps) jobs ride along with the leader's build —
    // whatever their tenant or class, they cost no extra device time.
    // Fused jobs only coalesce with fused jobs of the same minpts: the
    // union-find threshold is baked into the fused traversal, and a
    // table job cannot share a build that produces no table.
    // Quality is part of the build's identity too: an exact job must
    // never ride a subsampled build (it would silently get approximate
    // labels), and subsampled jobs only share when rate and seed match.
    // Cell-graph "builds" are the whole clustering, so like fused they
    // additionally require equal minpts.
    const QualitySpec lead_q = effective_quality(leader->spec, options_.policy);
    for (auto& per_class : queues_) {
      for (auto& [tenant, q] : per_class) {
        for (auto it = q.begin(); it != q.end();) {
          if ((*it)->spec.dataset == leader->spec.dataset &&
              eps_bits((*it)->spec.eps) == eps_bits(leader->spec.eps) &&
              (*it)->spec.fused == leader->spec.fused &&
              effective_quality((*it)->spec, options_.policy) == lead_q &&
              (!(leader->spec.fused ||
                 lead_q.mode == ClusterQuality::kCellGraph) ||
               (*it)->spec.minpts == leader->spec.minpts)) {
            remove_queued_locked(**it);
            // The member's work happens under the leader's request id;
            // the link instant lets the analyzer chase a member's latency
            // into the leader's build spans.
            (*it)->pickup_us = pickup_us;
            (*it)->trace.link_id = leader->trace.request_id;
            obs::link("coalesced", (*it)->trace.request_id,
                      (*it)->trace.tenant, leader->trace.request_id);
            members.push_back(std::move(*it));
            it = q.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
  }
  ++in_flight_groups_;
  return leader;
}

void ClusterService::requeue_front(std::vector<PendingPtr> group) {
  std::lock_guard lock(mutex_);
  for (auto& job : group) {
    const auto cls = static_cast<std::size_t>(job->spec.priority);
    auto& tenant_q = queues_[cls][job->spec.tenant];
    if (std::find(rr_order_[cls].begin(), rr_order_[cls].end(),
                  job->spec.tenant) == rr_order_[cls].end()) {
      rr_order_[cls].push_back(job->spec.tenant);
    }
    queued_bytes_ += job->priced_bytes;
    ++queued_count_;
    tenant_q.push_front(std::move(job));
  }
  work_available_.notify_all();
}

int ClusterService::pick_device() {
  const std::size_t k = devices_.size();
  const std::size_t start = dispatch_rr_.fetch_add(1) % k;
  int fallback = -1;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t d = (start + i) % k;
    if (devices_[d]->lost()) continue;
    if (fallback < 0) fallback = static_cast<int>(d);
    if (breaker_.allow(d)) return static_cast<int>(d);
  }
  // Every live device's breaker is open: route to the first live one
  // anyway (an open breaker sheds load onto alternatives; when there is
  // no alternative it must not starve the queue).
  return fallback;
}

ClusterService::TenantCounts& ClusterService::tenant_counts_locked(
    const std::string& tenant) {
  TenantCounts& tc = tenant_stats_[tenant];
  if (tc.latency == nullptr) {
    tc.latency = &obs::Registry::global().histogram(
        "service_latency_seconds", "tenant=" + tenant);
  }
  return tc;
}

void ClusterService::record_terminal(const Pending& job, ReplayState& rs,
                                     JobState state, JobResult&& partial) {
  partial.state = state;
  partial.retries = job.retries;
  partial.request_id = job.trace.request_id;
  partial.linked_request_id = job.trace.link_id;

  // Close the latency ledger: every wall microsecond between submit and
  // now lands in exactly one stage. Admission and queue-wait come from
  // the Pending's stamps; build/cache/stream were added by the caller;
  // whatever is left is finalize (result assembly + this bookkeeping).
  const double now_us = obs::Tracer::global().now_us();
  double latency_seconds = 0.0;
  if (job.submit_us > 0.0) {
    latency_seconds = std::max(0.0, (now_us - job.submit_us) * 1e-6);
    partial.stages.add(Stage::kAdmission, job.admission_seconds);
    const double queue_wait =
        job.pickup_us > 0.0
            ? std::max(0.0, (job.pickup_us - job.submit_us) * 1e-6 -
                                job.admission_seconds)
            : std::max(0.0, latency_seconds - job.admission_seconds);
    partial.stages.add(Stage::kQueueWait, queue_wait);
    const double finalize =
        latency_seconds - partial.stages.total_wall_seconds();
    partial.stages.add(Stage::kFinalize, std::max(0.0, finalize));
    emit_stage_spans(job.trace, job.submit_us, partial.stages);
  }

  obs::Registry& reg = obs::Registry::global();
  {
    const std::string tenant_label = "tenant=" + job.spec.tenant;
    for (std::size_t s = 0; s < kNumStages; ++s) {
      const double wall = partial.stages.wall_seconds[s];
      if (wall <= 0.0) continue;
      reg.histogram("service_stage_seconds",
                    "stage=" + std::string(stage_name(static_cast<Stage>(s))) +
                        "," + tenant_label)
          .observe(wall);
    }
    reg.counter("service_tenant_requests",
                tenant_label + ",outcome=" + job_state_name(state))
        .add(1);
  }

  if (state == JobState::kFailed) {
    obs::FlightRecorder& fr = obs::FlightRecorder::global();
    fr.note("job", job.trace.request_id,
            "request %llu (tenant %s, dataset %s) failed: %s after %u "
            "retries",
            static_cast<unsigned long long>(job.trace.request_id),
            job.spec.tenant.c_str(), job.spec.dataset.c_str(),
            failure_reason_name(partial.failure), partial.retries);
    fr.dump("job_failed");
  }

  {
    std::lock_guard lock(rs.results_mutex);
    // Preserve admission pricing stamped at submit.
    partial.priced_pairs = rs.results[job.index].priced_pairs;
    partial.priced_bytes = rs.results[job.index].priced_bytes;
    rs.results[job.index] = std::move(partial);
  }
  publish_outcome(state);
  std::lock_guard slock(stats_mutex_);
  TenantCounts& tc = tenant_counts_locked(job.spec.tenant);
  const auto terminal_idx = static_cast<std::size_t>(state) -
                            static_cast<std::size_t>(JobState::kCompleted);
  if (terminal_idx < tc.terminal.size()) ++tc.terminal[terminal_idx];
  if (job.submit_us > 0.0) tc.latency->observe(latency_seconds);
  switch (state) {
    case JobState::kCompleted:
      ++stats_.completed;
      break;
    case JobState::kRejected:
      ++stats_.rejected;
      break;
    case JobState::kShed:
      ++stats_.shed;
      break;
    case JobState::kCancelled:
      ++stats_.cancelled;
      break;
    case JobState::kDeadlineExceeded:
      ++stats_.deadline_exceeded;
      break;
    case JobState::kFailed:
      ++stats_.failed;
      break;
    default:
      break;
  }
}

void ClusterService::worker_loop(unsigned worker_id, ReplayState& rs) {
  obs::set_thread_track(obs::kHostPid, "service_worker");
  for (;;) {
    std::vector<PendingPtr> members;
    PendingPtr leader = pop_group(members);
    if (leader == nullptr) {
      work_available_.notify_all();  // wake siblings so they can exit too
      return;
    }
    process_group(std::move(leader), std::move(members), worker_id, rs);
    {
      std::lock_guard lock(mutex_);
      --in_flight_groups_;
    }
    work_available_.notify_all();
  }
}

void ClusterService::process_group(PendingPtr leader,
                                   std::vector<PendingPtr> members,
                                   unsigned worker_id, ReplayState& rs) {
  std::vector<PendingPtr> group;
  group.push_back(std::move(leader));
  for (auto& m : members) group.push_back(std::move(m));

  double& clock = rs.worker_clocks[worker_id];

  // Terminal filters that never touch a device: client abandoned, and
  // modeled deadline already missed while queued.
  std::vector<PendingPtr> runnable;
  for (auto& job : group) {
    if (job->token->cancelled()) {
      JobResult r;
      r.failure = job->token->reason() == CancelReason::kDeadline
                      ? FailureReason::kDeadlineExceeded
                      : FailureReason::kCancelled;
      const JobState state = r.failure == FailureReason::kDeadlineExceeded
                                 ? JobState::kDeadlineExceeded
                                 : JobState::kCancelled;
      r.modeled_start_seconds = clock;
      r.modeled_finish_seconds = clock;
      record_terminal(*job, rs, state, std::move(r));
      continue;
    }
    if (job->spec.deadline_seconds > 0.0 &&
        std::max(clock, job->spec.arrival_seconds) >
            job->spec.deadline_seconds) {
      JobResult r;
      r.failure = FailureReason::kDeadlineExceeded;
      r.modeled_start_seconds = clock;
      r.modeled_finish_seconds = clock;
      record_terminal(*job, rs, JobState::kDeadlineExceeded, std::move(r));
      continue;
    }
    runnable.push_back(std::move(job));
  }
  if (runnable.empty()) return;

  const JobSpec& lead = runnable.front()->spec;
  const Dataset& ds = datasets_.at(lead.dataset);
  const QualitySpec quality = effective_quality(lead, options_.policy);
  const TableCache::Key key = make_key(lead, quality, options_.policy);
  const bool coalesced_build = runnable.size() > 1;
  if (coalesced_build) {
    std::lock_guard slock(stats_mutex_);
    ++stats_.coalesced_builds;
    stats_.coalesced_jobs += runnable.size() - 1;
  }

  // Shared work (index build, device build, calibration retries) runs
  // under the leader's request; per-job sections re-scope below, so every
  // span this worker records carries some request id.
  RequestScope group_scope(runnable.front()->trace);

  // --- Cell-graph quality: the whole clustering is one host pass over
  // the eps/sqrt(d) cell grid — no neighbor table, no cache entry, no
  // device occupancy. Coalescing guaranteed equal minpts, so one run
  // serves the group; labels come back in input order (no unmap). ---
  if (quality.mode == ClusterQuality::kCellGraph) {
    const cudasim::DeviceConfig* cfg = nullptr;
    for (cudasim::Device* d : devices_) {
      if (!d->lost()) {
        cfg = &d->config();
        break;
      }
    }
    const cudasim::DeviceConfig reference{};  // modeled costs only
    WallTimer t;
    CellGraphReport cg;
    const ClusterResult labels = cell_graph_dbscan(
        ds.points, lead.eps, lead.minpts, cfg != nullptr ? *cfg : reference,
        &cg);
    const double wall = t.seconds();
    {
      std::lock_guard slock(stats_mutex_);
      stats_.cell_graph_jobs += runnable.size();
    }
    bool first = true;
    for (auto& job : runnable) {
      RequestScope scope(job->trace);
      const double start = std::max(clock, job->spec.arrival_seconds);
      clock = start + (first ? wall : 0.0);
      JobResult r;
      r.coalesced = coalesced_build;
      r.device_id = -1;
      r.modeled_start_seconds = start;
      r.modeled_finish_seconds = clock;
      r.num_clusters = labels.num_clusters;
      r.noise_count = labels.noise_count();
      r.stages.add(Stage::kBuild, first ? wall : 0.0,
                   first ? cg.modeled_seconds : 0.0);
      if (options_.keep_labels) r.labels = labels.labels;
      record_terminal(*job, rs, JobState::kCompleted, std::move(r));
      first = false;
    }
    return;
  }

  // Completes one job from a table (cache hit or freshly built+shared):
  // host DBSCAN over the table, measured wall time advancing the modeled
  // clock (host work is real work on this machine). `build_wall` is the
  // wall time this request spent waiting on the group's table build (0
  // for cache hits).
  auto finish_from_table = [&](Pending& job, const CachedTable& entry,
                               bool cache_hit, double device_share,
                               int device_id, bool host_fb,
                               double build_wall) {
    RequestScope scope(job.trace);
    const double start = std::max(clock, job.spec.arrival_seconds);
    WallTimer t;
    // Subsampled tables carry ~rate of each row; the SNG-rescaled
    // threshold keeps the same points core in expectation.
    const ClusterResult labels = dbscan_neighbor_table(
        entry.table, quality.scaled_minpts(job.spec.minpts));
    clock = start + device_share + t.seconds();
    JobResult r;
    r.cache_hit = cache_hit;
    r.coalesced = coalesced_build;
    r.host_fallback = host_fb;
    r.device_id = device_id;
    r.modeled_start_seconds = start;
    r.modeled_finish_seconds = clock;
    r.modeled_device_seconds = device_share;
    r.num_clusters = labels.num_clusters;
    r.noise_count = labels.noise_count();
    if (build_wall > 0.0 || device_share > 0.0) {
      r.stages.add(Stage::kBuild, build_wall, device_share);
    }
    r.stages.add(Stage::kCache, t.seconds());
    if (options_.keep_labels) {
      r.labels = unmap(labels.labels, entry.original_ids);
    }
    record_terminal(job, rs, JobState::kCompleted, std::move(r));
  };

  // --- Cache hit: no device at all. Fused jobs never probe: the cache
  // holds materialized tables, and serving a fused request from one would
  // silently undo its no-table contract (and skew A/B measurements). ---
  if (TableCache::Handle hit = lead.fused ? TableCache::Handle{}
                                          : cache_.find(key)) {
    for (auto& job : runnable) {
      // Link each hit back to the request whose build populated the
      // entry, so `explain` can chase a suspiciously fast request into
      // the build it reused.
      if (hit->built_by_request != 0 &&
          hit->built_by_request != job->trace.request_id) {
        job->trace.link_id = hit->built_by_request;
        obs::link("cache_hit", job->trace.request_id, job->trace.tenant,
                  hit->built_by_request);
      }
      finish_from_table(*job, *hit.get(), /*cache_hit=*/true,
                        /*device_share=*/0.0, /*device_id=*/-1,
                        /*host_fb=*/false, /*build_wall=*/0.0);
    }
    return;
  }

  // --- Fresh build. ---
  const int dev = pick_device();
  if (dev < 0) {
    // Fleet gone. Finish host-side (still a completed request) or fail.
    if (!options_.host_fallback) {
      for (auto& job : runnable) {
        JobResult r;
        r.failure = FailureReason::kDeviceLost;
        record_terminal(*job, rs, JobState::kFailed, std::move(r));
      }
      return;
    }
    WallTimer t;
    GridIndex index = build_grid_index(ds.points, lead.eps);
    CachedTable entry;
    entry.table = build_neighbor_table_host_parallel(index, lead.eps,
                                                     /*num_threads=*/0,
                                                     quality);
    entry.table.canonicalize();
    entry.original_ids = std::move(index.original_ids);
    entry.bytes = CachedTable::payload_bytes(entry.table);
    entry.built_by_request = runnable.front()->trace.request_id;
    const double host_build = t.seconds();
    {
      std::lock_guard slock(stats_mutex_);
      stats_.host_fallback_jobs += runnable.size();
    }
    bool first = true;
    for (auto& job : runnable) {
      finish_from_table(*job, entry, /*cache_hit=*/false,
                        first ? host_build : 0.0, /*device_id=*/-1,
                        /*host_fb=*/true, host_build);
      first = false;
    }
    // Fused jobs bypass the cache in both directions: the emergency host
    // table above is a fallback artifact, not a reusable build product.
    if (cache_.enabled() && !lead.fused) cache_.insert(key, std::move(entry));
    return;
  }

  cudasim::Device& device = *devices_[static_cast<std::size_t>(dev)];
  BatchPolicy bp = options_.policy;
  bp.metrics_labels = "service=1";
  // The group's effective quality governs the kernels: subsampled jobs
  // Bernoulli-filter candidate pairs at traversal time on the device.
  bp.quality = quality;
  // Belt and braces: the builder re-installs this context on its pump
  // thread even if a future caller launches builds from an unscoped
  // thread.
  bp.trace = runnable.front()->trace;
  CancelToken* token = nullptr;
  if (runnable.size() == 1) {
    // Singleton builds propagate the job's own token into the ladder; a
    // coalesced build serves several clients, so one client's cancel
    // must not abort the others' work.
    token = runnable.front()->token.get();
    if (runnable.front()->spec.wall_deadline_seconds > 0.0) {
      token->set_deadline_after(runnable.front()->spec.wall_deadline_seconds);
    }
    bp.cancel = token;
  }

  try {
    WallTimer build_wall_timer;
    GridIndex index = build_grid_index(ds.points, lead.eps);
    const double index_wall = build_wall_timer.seconds();

    if (lead.fused) {
      // Fused no-table path: one traversal kernel counts degrees and
      // unions both-core edges for the whole group (coalescing guaranteed
      // equal minpts), nothing is materialized or cached. Hard failures
      // fall through to the breaker + retry ladder like any build.
      StreamingDbscan consumer(index.size(),
                               quality.scaled_minpts(lead.minpts));
      if (token != nullptr) consumer.set_cancel_token(token);
      const BuildReport report =
          fused_cluster(device, index, lead.eps, consumer, bp);
      breaker_.record_success(static_cast<std::size_t>(dev));
      const double build_wall = build_wall_timer.seconds();
      const double build_model = index_wall + report.modeled_table_seconds;
      WallTimer fin;
      const ClusterResult labels = consumer.finalize(options_.dbscan_threads);
      const double finalize_wall = fin.seconds();
      {
        std::lock_guard slock(stats_mutex_);
        stats_.fused_jobs += runnable.size();
      }
      bool first = true;
      for (auto& job : runnable) {
        RequestScope scope(job->trace);
        const double start = std::max(clock, job->spec.arrival_seconds);
        clock = start + (first ? build_model + finalize_wall : 0.0);
        JobResult r;
        r.fused = true;
        r.coalesced = coalesced_build;
        r.host_fallback = report.used_host_fallback;
        r.device_id = dev;
        r.modeled_start_seconds = start;
        r.modeled_finish_seconds = clock;
        r.modeled_device_seconds = first ? build_model : 0.0;
        r.num_clusters = labels.num_clusters;
        r.noise_count = labels.noise_count();
        r.stages.add(Stage::kBuild, build_wall, first ? build_model : 0.0);
        r.stages.add(Stage::kStreamUnion, finalize_wall);
        if (options_.keep_labels) {
          r.labels = unmap(labels.labels, index.original_ids);
        }
        record_terminal(*job, rs, JobState::kCompleted, std::move(r));
        first = false;
      }
      return;
    }

    NeighborTableBuilder builder(device, bp);
    BuildReport report;

    if (cache_.enabled()) {
      // Materialized path: one build, labels for every group job via the
      // same dbscan_neighbor_table a later cache hit will use — so
      // cache-hit labels are bit-identical to fresh-build labels.
      CachedTable entry;
      entry.table = builder.build(index, lead.eps, &report);
      entry.table.canonicalize();
      entry.original_ids = std::move(index.original_ids);
      entry.bytes = CachedTable::payload_bytes(entry.table);
      entry.built_by_request = runnable.front()->trace.request_id;
      const double build_wall = build_wall_timer.seconds();
      TableCache::Handle pinned = cache_.insert(key, std::move(entry));
      breaker_.record_success(static_cast<std::size_t>(dev));
      const double build_model = index_wall + report.modeled_table_seconds;
      bool first = true;
      for (auto& job : runnable) {
        finish_from_table(*job, *pinned.get(), /*cache_hit=*/false,
                          first ? build_model : 0.0, dev,
                          report.used_host_fallback, build_wall);
        first = false;
      }
      return;
    }

    // Cache off: labels-only streaming build — one StreamingDbscan per
    // group job fed through a FanoutSink, T never materialized.
    std::vector<std::unique_ptr<StreamingDbscan>> clusterers;
    FanoutSink fanout;
    for (auto& job : runnable) {
      clusterers.push_back(std::make_unique<StreamingDbscan>(
          index.size(), quality.scaled_minpts(job->spec.minpts)));
      if (token != nullptr) clusterers.back()->set_cancel_token(token);
      fanout.add(clusterers.back().get());
    }
    builder.build(index, lead.eps, &report, &fanout,
                  /*materialize_table=*/false);
    breaker_.record_success(static_cast<std::size_t>(dev));
    const double build_wall = build_wall_timer.seconds();
    const double build_model = index_wall + report.modeled_table_seconds;
    for (std::size_t j = 0; j < runnable.size(); ++j) {
      Pending& job = *runnable[j];
      RequestScope scope(job.trace);
      const double start = std::max(clock, job.spec.arrival_seconds);
      WallTimer t;
      const ClusterResult labels =
          clusterers[j]->finalize(options_.dbscan_threads);
      clock = start + (j == 0 ? build_model : 0.0) + t.seconds();
      JobResult r;
      r.coalesced = coalesced_build;
      r.host_fallback = report.used_host_fallback;
      r.device_id = dev;
      r.modeled_start_seconds = start;
      r.modeled_finish_seconds = clock;
      r.modeled_device_seconds = j == 0 ? build_model : 0.0;
      r.num_clusters = labels.num_clusters;
      r.noise_count = labels.noise_count();
      r.stages.add(Stage::kBuild, build_wall,
                   j == 0 ? build_model : 0.0);
      r.stages.add(Stage::kStreamUnion, t.seconds());
      if (options_.keep_labels) {
        r.labels = unmap(labels.labels, index.original_ids);
      }
      record_terminal(job, rs, JobState::kCompleted, std::move(r));
    }
    return;
  } catch (...) {
    const FailureReason fr = classify_current_exception();
    if (fr == FailureReason::kCancelled ||
        fr == FailureReason::kDeadlineExceeded) {
      // Only singleton builds carry a token, so the group is one job. The
      // unwind already returned its pooled buffers.
      Pending& job = *runnable.front();
      JobResult r;
      r.failure = fr;
      r.device_id = dev;
      r.modeled_start_seconds = clock;
      r.modeled_finish_seconds = clock;
      record_terminal(job, rs,
                      fr == FailureReason::kCancelled
                          ? JobState::kCancelled
                          : JobState::kDeadlineExceeded,
                      std::move(r));
      return;
    }
    obs::FlightRecorder& frec = obs::FlightRecorder::global();
    frec.note("build", runnable.front()->trace.request_id,
              "build failed on device %d: %s (group of %zu)", dev,
              failure_reason_name(fr), runnable.size());
    if (breaker_.record_failure(static_cast<std::size_t>(dev))) {
      frec.note("breaker", runnable.front()->trace.request_id,
                "breaker opened on device %d", dev);
      frec.dump("breaker_open");
    }
    bool retry = false;
    {
      std::lock_guard lock(mutex_);
      if (retry_budget_left_ != 0) {
        --retry_budget_left_;
        retry = true;
      }
    }
    if (retry) {
      {
        std::lock_guard slock(stats_mutex_);
        ++stats_.retries;
      }
      obs::Registry::global().counter("service_retries").add(1);
      for (auto& job : runnable) ++job->retries;
      requeue_front(std::move(runnable));
      return;
    }
    for (auto& job : runnable) {
      JobResult r;
      r.failure = fr;
      r.device_id = dev;
      r.modeled_start_seconds = clock;
      r.modeled_finish_seconds = clock;
      record_terminal(*job, rs, JobState::kFailed, std::move(r));
    }
    return;
  }
}

std::vector<JobResult> ClusterService::replay(
    const std::vector<JobSpec>& jobs) {
  ReplayState rs;
  rs.results.resize(jobs.size());
  rs.worker_clocks.assign(std::max(1u, options_.num_workers), 0.0);
  {
    std::lock_guard lock(mutex_);
    closed_ = false;
    retry_budget_left_ = options_.retry_budget;
  }

  // Admission pass, in arrival order. replay is the whole "network": all
  // jobs are on the doorstep before serving starts, which makes admission
  // decisions deterministic for a given job list.
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      auto job = std::make_shared<Pending>();
      job->spec = jobs[i];
      job->index = i;
      job->token = std::make_shared<CancelToken>();
      if (job->spec.abandoned) job->token->cancel();
      submit_locked(std::move(job), rs);
    }
    closed_ = true;
  }
  work_available_.notify_all();

  std::vector<std::thread> workers;
  const unsigned n_workers = std::max(1u, options_.num_workers);
  workers.reserve(n_workers);
  for (unsigned w = 0; w < n_workers; ++w) {
    workers.emplace_back([this, w, &rs] { worker_loop(w, rs); });
  }
  for (auto& w : workers) w.join();

  double makespan = 0.0;
  for (double c : rs.worker_clocks) makespan = std::max(makespan, c);
  {
    std::lock_guard slock(stats_mutex_);
    stats_.modeled_makespan_seconds =
        std::max(stats_.modeled_makespan_seconds, makespan);
    stats_.cache_hits = cache_.hits();
    stats_.cache_misses = cache_.misses();
    stats_.cache_evictions = cache_.evictions();
    stats_.breaker_opens = breaker_.opens();
  }
  obs::Registry::global()
      .gauge("service_modeled_makespan_seconds")
      .set(makespan);
  return std::move(rs.results);
}

ServiceStats ClusterService::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

std::vector<TenantSlo> ClusterService::slo_report() const {
  std::vector<TenantSlo> report;
  std::lock_guard lock(stats_mutex_);
  for (const auto& [tenant, tc] : tenant_stats_) {
    TenantSlo row;
    row.tenant = tenant;
    row.submitted = tc.submitted;
    row.completed = tc.terminal[0];
    row.rejected = tc.terminal[1];
    row.shed = tc.terminal[2];
    row.cancelled = tc.terminal[3];
    row.deadline_exceeded = tc.terminal[4];
    row.failed = tc.terminal[5];
    if (tc.latency != nullptr) {
      const obs::Histogram::Snapshot snap = tc.latency->snapshot();
      row.p50_seconds = snap.quantile(0.5);
      row.p99_seconds = snap.quantile(0.99);
    }
    row.target_p99_seconds = options_.slo_p99_target_seconds;
    row.target_met = row.target_p99_seconds <= 0.0 ||
                     row.p99_seconds <= row.target_p99_seconds;
    report.push_back(std::move(row));
  }
  return report;
}

}  // namespace hdbscan::service
