// Per-device circuit breaker + service-level retry budget, layered on the
// builder's ResiliencePolicy ladder (DESIGN.md §13).
//
// The ladder retries *within* one build; the breaker decides whether a
// device should receive builds at all. A device that keeps failing builds
// (transient faults past the retry cap, repeated OOM, eventual loss)
// flips its breaker open, and dispatch routes around it instead of
// feeding every new request into the same failure. Cooldown is counted in
// fleet-wide dispatch attempts — not wall time — so behavior is
// deterministic under test and independent of host speed. After the
// cooldown the breaker goes half-open and admits exactly one probe build:
// success closes it, failure re-opens it for another cooldown.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace hdbscan::service {

class CircuitBreaker {
 public:
  enum class State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  /// `failure_threshold` consecutive failures open a device's breaker;
  /// `cooldown_dispatches` fleet-wide dispatch attempts must pass before
  /// it half-opens.
  CircuitBreaker(std::size_t num_devices, unsigned failure_threshold,
                 unsigned cooldown_dispatches)
      : failure_threshold_(failure_threshold == 0 ? 1 : failure_threshold),
        cooldown_dispatches_(cooldown_dispatches),
        slots_(num_devices) {}

  /// One dispatch attempt asks whether device `d` may run a build. Counts
  /// the attempt (advancing every open breaker's cooldown) and, for an
  /// open breaker whose cooldown elapsed, transitions to half-open and
  /// admits the probe.
  [[nodiscard]] bool allow(std::size_t d) {
    std::lock_guard lock(mutex_);
    ++dispatches_;
    Slot& s = slots_.at(d);
    switch (s.state) {
      case State::kClosed:
        return true;
      case State::kHalfOpen:
        // One probe at a time: further builds wait for its verdict.
        if (s.probe_in_flight) return false;
        s.probe_in_flight = true;
        return true;
      case State::kOpen:
        if (dispatches_ - s.opened_at_dispatch > cooldown_dispatches_) {
          s.state = State::kHalfOpen;
          s.probe_in_flight = true;
          return true;
        }
        return false;
    }
    return false;
  }

  void record_success(std::size_t d) {
    std::lock_guard lock(mutex_);
    Slot& s = slots_.at(d);
    s.consecutive_failures = 0;
    s.probe_in_flight = false;
    s.state = State::kClosed;
  }

  /// Returns true when this failure flipped the breaker open (closed or
  /// half-open → open) — the caller's hook for post-mortem capture.
  bool record_failure(std::size_t d) {
    std::lock_guard lock(mutex_);
    Slot& s = slots_.at(d);
    s.probe_in_flight = false;
    ++s.consecutive_failures;
    if (s.state == State::kHalfOpen ||
        s.consecutive_failures >= failure_threshold_) {
      const bool opened_now = s.state != State::kOpen;
      s.state = State::kOpen;
      s.opened_at_dispatch = dispatches_;
      ++opens_;
      return opened_now;
    }
    return false;
  }

  [[nodiscard]] State state(std::size_t d) const {
    std::lock_guard lock(mutex_);
    return slots_.at(d).state;
  }
  [[nodiscard]] std::uint64_t opens() const {
    std::lock_guard lock(mutex_);
    return opens_;
  }

 private:
  struct Slot {
    State state = State::kClosed;
    unsigned consecutive_failures = 0;
    std::uint64_t opened_at_dispatch = 0;
    bool probe_in_flight = false;
  };

  unsigned failure_threshold_;
  unsigned cooldown_dispatches_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  std::uint64_t dispatches_ = 0;  ///< fleet-wide attempt counter
  std::uint64_t opens_ = 0;
};

}  // namespace hdbscan::service
