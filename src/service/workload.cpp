#include "service/workload.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"

namespace hdbscan::service {

std::vector<JobSpec> make_zipf_workload(const WorkloadSpec& spec) {
  if (spec.eps_choices.empty() || spec.minpts_choices.empty()) {
    throw std::invalid_argument("make_zipf_workload: empty choice lists");
  }
  // Zipf CDF over the eps menu, hot ranks first.
  std::vector<double> cdf(spec.eps_choices.size());
  double total = 0.0;
  for (std::size_t r = 0; r < cdf.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), spec.zipf_s);
    cdf[r] = total;
  }
  Xoshiro256 rng(spec.seed);
  std::vector<JobSpec> jobs;
  jobs.reserve(spec.num_jobs);
  for (unsigned i = 0; i < spec.num_jobs; ++i) {
    JobSpec job;
    job.tenant =
        "tenant" + std::to_string(rng.below(std::max(1u, spec.num_tenants)));
    job.dataset = spec.dataset;
    const double u = rng.uniform() * total;
    std::size_t rank = 0;
    while (rank + 1 < cdf.size() && u > cdf[rank]) ++rank;
    job.eps = spec.eps_choices[rank];
    job.minpts = spec.minpts_choices[rng.below(
        static_cast<std::uint64_t>(spec.minpts_choices.size()))];
    const double pclass = rng.uniform();
    if (pclass < spec.interactive_fraction) {
      job.priority = Priority::kInteractive;
    } else if (pclass < spec.interactive_fraction + spec.batch_fraction) {
      job.priority = Priority::kBatch;
    }
    job.abandoned = rng.uniform() < spec.abandoned_fraction;
    if (rng.uniform() < spec.deadline_fraction) {
      job.deadline_seconds =
          spec.deadline_min_seconds +
          rng.uniform() *
              (spec.deadline_max_seconds - spec.deadline_min_seconds);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

namespace {

Priority parse_priority(const std::string& word, std::size_t line_no) {
  if (word == "batch") return Priority::kBatch;
  if (word == "normal") return Priority::kNormal;
  if (word == "interactive") return Priority::kInteractive;
  throw std::runtime_error("jobs file line " + std::to_string(line_no) +
                           ": unknown priority '" + word + "'");
}

}  // namespace

std::vector<JobSpec> parse_jobs(const std::string& text) {
  std::vector<JobSpec> jobs;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    JobSpec job;
    if (!(fields >> job.tenant)) continue;  // blank / comment-only line
    std::string priority_word;
    if (!(fields >> job.dataset >> job.eps >> job.minpts)) {
      throw std::runtime_error("jobs file line " + std::to_string(line_no) +
                               ": expected <tenant> <dataset> <eps> <minpts>");
    }
    if (fields >> priority_word) {
      job.priority = parse_priority(priority_word, line_no);
      double v = 0.0;
      if (fields >> v) job.deadline_seconds = v;
      if (fields >> v) job.wall_deadline_seconds = v;
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<JobSpec> load_jobs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open jobs file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_jobs(buf.str());
}

}  // namespace hdbscan::service
