// Eps-keyed neighbor-table cache with byte-budget LRU eviction — the
// paper's T-reuse insight turned into a service cache policy: a request
// for an (dataset, eps) the service has already built skips the GPU
// entirely and pays only the host-side DBSCAN over the cached table.
//
// Entries are immutable once inserted (canonicalized tables plus the id
// map needed to unmap labels) and handed out as shared_ptrs, so eviction
// never invalidates a reader. A pin count per entry protects in-flight
// coalesced builds: the group that inserted (or found) an entry holds a
// Handle until its last job finished, and the evictor skips pinned
// entries even under byte pressure.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "dbscan/neighbor_table.hpp"
#include "index/index_backend.hpp"

namespace hdbscan::service {

/// One cached build: the canonicalized symmetric table plus the grid
/// index's id permutation (labels computed over the table are in index
/// order; original_ids unmaps them).
struct CachedTable {
  NeighborTable table;
  std::vector<PointId> original_ids;
  std::size_t bytes = 0;  ///< resident estimate used for the byte budget
  /// Request whose build populated this entry — later cache hits record a
  /// span link back to it (0 = built outside a request, e.g. tests).
  std::uint64_t built_by_request = 0;

  [[nodiscard]] static std::size_t payload_bytes(const NeighborTable& t) {
    return t.total_pairs() * sizeof(PointId) +
           t.num_points() * 2 * sizeof(std::uint32_t);
  }
};

class TableCache {
 public:
  struct Key {
    std::string dataset;
    std::uint32_t eps_bits = 0;  ///< bit pattern of the float eps
    /// Build configuration the entry was produced under. A canonicalized
    /// table is backend/scan-mode agnostic *when both paths are correct*,
    /// but keying on them keeps a backend or scan-mode change from
    /// silently serving tables built by a differently-validated path —
    /// an operator A/B-ing grid vs BVH sees each backend populate (and
    /// hit) its own entries.
    IndexBackend backend = IndexBackend::kGrid;
    ScanMode scan_mode = ScanMode::kHalf;
    /// Quality identity of the build (DESIGN.md §16). A subsampled table
    /// is missing an adversarially-chosen subset of every row, so it must
    /// never serve an exact request — and two subsampled builds only
    /// share rows when mode, rate bit-pattern, and seed all agree. Keying
    /// on all three partitions the cache per quality configuration.
    ClusterQuality quality = ClusterQuality::kExact;
    std::uint32_t sample_rate_bits = 0;
    std::uint64_t sample_seed = 0;

    bool operator==(const Key& o) const noexcept {
      return eps_bits == o.eps_bits && backend == o.backend &&
             scan_mode == o.scan_mode && quality == o.quality &&
             sample_rate_bits == o.sample_rate_bits &&
             sample_seed == o.sample_seed && dataset == o.dataset;
    }
  };

  /// RAII pin on one entry: while any Handle for a key is alive, the
  /// entry cannot be evicted. Copyable (shared pin).
  class Handle {
   public:
    Handle() = default;
    [[nodiscard]] const CachedTable* get() const noexcept {
      return entry_.get();
    }
    const CachedTable* operator->() const noexcept { return entry_.get(); }
    explicit operator bool() const noexcept { return entry_ != nullptr; }
    ~Handle() { release(); }
    Handle(const Handle& o) : cache_(o.cache_), key_(o.key_), entry_(o.entry_) {
      if (cache_ != nullptr) cache_->pin(key_);
    }
    Handle& operator=(const Handle& o) {
      if (this != &o) {
        release();
        cache_ = o.cache_;
        key_ = o.key_;
        entry_ = o.entry_;
        if (cache_ != nullptr) cache_->pin(key_);
      }
      return *this;
    }
    Handle(Handle&& o) noexcept
        : cache_(o.cache_), key_(std::move(o.key_)), entry_(std::move(o.entry_)) {
      o.cache_ = nullptr;
      o.entry_ = nullptr;
    }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        cache_ = o.cache_;
        key_ = std::move(o.key_);
        entry_ = std::move(o.entry_);
        o.cache_ = nullptr;
        o.entry_ = nullptr;
      }
      return *this;
    }

   private:
    friend class TableCache;
    Handle(TableCache* cache, Key key, std::shared_ptr<const CachedTable> e)
        : cache_(cache), key_(std::move(key)), entry_(std::move(e)) {}
    void release() {
      if (cache_ != nullptr) cache_->unpin(key_);
      cache_ = nullptr;
      entry_ = nullptr;
    }
    TableCache* cache_ = nullptr;
    Key key_;
    std::shared_ptr<const CachedTable> entry_;
  };

  /// `bytes_budget` 0 disables the cache entirely (find misses, insert
  /// drops).
  explicit TableCache(std::uint64_t bytes_budget)
      : bytes_budget_(bytes_budget) {}

  [[nodiscard]] bool enabled() const noexcept { return bytes_budget_ != 0; }

  /// Pinned lookup; an empty Handle is a miss.
  [[nodiscard]] Handle find(const Key& key);

  /// Inserts (replacing any unpinned previous entry for the key) and
  /// returns a pinned handle to the inserted entry. Evicts
  /// least-recently-used *unpinned* entries until the budget holds; the
  /// new entry itself is never evicted while the returned Handle lives.
  Handle insert(const Key& key, CachedTable entry);

  [[nodiscard]] std::uint64_t resident_bytes() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;
  /// True when the key is currently resident (test hook).
  [[nodiscard]] bool contains(const Key& key) const;

 private:
  struct Slot {
    std::shared_ptr<const CachedTable> entry;
    std::uint64_t last_used = 0;
    unsigned pins = 0;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::string>{}(k.dataset) * 1000003u ^ k.eps_bits ^
             (static_cast<std::size_t>(k.backend) * 0x9e3779b9u) ^
             (static_cast<std::size_t>(k.scan_mode) * 0x85ebca6bu) ^
             (static_cast<std::size_t>(k.quality) * 0xc2b2ae35u) ^
             (static_cast<std::size_t>(k.sample_rate_bits) * 0x27d4eb2fu) ^
             static_cast<std::size_t>(k.sample_seed * 0x9e3779b97f4a7c15ull);
    }
  };

  void pin(const Key& key);
  void unpin(const Key& key);
  void evict_over_budget_locked();

  std::uint64_t bytes_budget_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, Slot, KeyHash> slots_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;       ///< guarded by mutex_
  std::uint64_t misses_ = 0;     ///< guarded by mutex_
  std::uint64_t evictions_ = 0;  ///< guarded by mutex_
};

}  // namespace hdbscan::service
