// The clustering service front-end (DESIGN.md §13): request scheduler,
// admission control, eps-keyed table cache, job coalescing, deadline /
// cancellation propagation, and a per-device circuit breaker — the layer
// that turns the one-shot pipeline into a resilient request server.
//
// Serving model (no network): replay() admits a job list in arrival
// order — admission control prices each job via the estimator's
// reference calibration and rejects-with-reason or sheds lower-priority
// queued work when the byte budget or depth limit would be exceeded —
// then a small pool of worker threads drains the per-tenant fair queues
// to completion. Every job ends in exactly one terminal RequestOutcome,
// published to the obs registry.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/request_context.hpp"
#include "common/types.hpp"
#include "core/batch_planner.hpp"
#include "cudasim/device.hpp"
#include "obs/registry.hpp"
#include "service/circuit_breaker.hpp"
#include "service/request.hpp"
#include "service/table_cache.hpp"

namespace hdbscan::service {

struct ServiceOptions {
  unsigned num_workers = 2;
  /// Admission: max queued jobs (the depth limit). One-item minimum: an
  /// empty queue always admits the next job, whatever its price.
  std::size_t queue_depth_limit = 64;
  /// Admission: max summed priced bytes across queued jobs (0 = off).
  std::uint64_t queue_bytes_budget = 0;
  /// Table-cache byte budget (0 = cache off).
  std::uint64_t cache_bytes_budget = 0;
  /// Coalesce queued same-(dataset, eps) jobs into one build.
  bool coalesce = true;
  /// Per-build policy — the ResiliencePolicy ladder runs *inside* each
  /// build; the breaker + retry budget below decide what happens when a
  /// whole build still fails.
  BatchPolicy policy;
  unsigned breaker_failure_threshold = 2;
  unsigned breaker_cooldown_dispatches = 6;
  /// Service-wide budget of whole-build re-dispatches after classified
  /// failures (transient-exhausted / OOM / device-lost).
  unsigned retry_budget = 4;
  /// When every device is gone, complete admitted jobs host-side instead
  /// of failing them.
  bool host_fallback = true;
  bool keep_labels = false;
  /// Threads for the host-side DBSCAN over (cached) tables; 0 = one.
  unsigned dbscan_threads = 0;
  /// Per-tenant p99 wall-latency target for slo_report() (seconds; 0 = no
  /// target — the report still lists quantiles, target_met stays true).
  double slo_p99_target_seconds = 0.0;
};

/// One tenant's row of the SLO report (DESIGN.md §14): terminal counts,
/// wall-latency quantiles from the tenant's registry histogram, and
/// whether the p99 target held.
struct TenantSlo {
  std::string tenant;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t failed = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double target_p99_seconds = 0.0;  ///< 0 = no target configured
  bool target_met = true;

  [[nodiscard]] std::uint64_t terminal_total() const noexcept {
    return completed + rejected + shed + cancelled + deadline_exceeded +
           failed;
  }
  /// Fraction of terminal requests that failed outright.
  [[nodiscard]] double error_fraction() const noexcept {
    const std::uint64_t t = terminal_total();
    return t == 0 ? 0.0 : static_cast<double>(failed) / static_cast<double>(t);
  }
  /// Fraction of submitted requests turned away by overload control.
  [[nodiscard]] double shed_fraction() const noexcept {
    return submitted == 0 ? 0.0
                          : static_cast<double>(rejected + shed) /
                                static_cast<double>(submitted);
  }
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t coalesced_jobs = 0;    ///< jobs that shared another's build
  std::uint64_t coalesced_builds = 0;  ///< builds serving > 1 job
  std::uint64_t fused_jobs = 0;        ///< jobs served by the fused path
  std::uint64_t cell_graph_jobs = 0;   ///< jobs served by the cell graph
  std::uint64_t retries = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t host_fallback_jobs = 0;
  /// Slowest worker's modeled clock when the queue drained — the modeled
  /// wall time of serving the whole workload.
  double modeled_makespan_seconds = 0.0;

  [[nodiscard]] std::uint64_t terminal_total() const noexcept {
    return completed + rejected + shed + cancelled + deadline_exceeded +
           failed;
  }
};

class ClusterService {
 public:
  ClusterService(std::vector<cudasim::Device*> devices,
                 ServiceOptions options);

  /// Registers a dataset and calibrates its admission price: one
  /// estimator run at `reference_eps` (host-resident grid view — no index
  /// upload), from which any eps is priced as ref_pairs * (eps/ref)^2.
  /// Falls back to a strided host sample when no device can run the
  /// estimation kernel.
  void register_dataset(const std::string& name, std::vector<Point2> points,
                        float reference_eps);

  /// Serves a job list: admission in input order, then the worker pool
  /// drains the queues to completion. Returns one JobResult per input
  /// job, in input order; every result is terminal.
  std::vector<JobResult> replay(const std::vector<JobSpec>& jobs);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] TableCache& cache() noexcept { return cache_; }
  [[nodiscard]] CircuitBreaker& breaker() noexcept { return breaker_; }

  /// Per-tenant SLO report over everything served so far, sorted by
  /// tenant name. Quantiles come from the per-tenant
  /// service_latency_seconds histograms in the global obs registry.
  [[nodiscard]] std::vector<TenantSlo> slo_report() const;

  /// Admission price of (dataset, eps) in pairs/bytes (test hook).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> price(
      const std::string& dataset, float eps) const;

 private:
  struct Dataset {
    std::vector<Point2> points;
    float ref_eps = 0.0f;
    std::uint64_t ref_pairs = 0;
  };

  struct Pending {
    JobSpec spec;
    std::size_t index = 0;  ///< slot in the results vector
    std::uint64_t priced_pairs = 0;
    std::uint64_t priced_bytes = 0;
    unsigned retries = 0;
    std::shared_ptr<CancelToken> token;
    /// Request identity minted at submit; installed on every thread that
    /// works for this job so its trace spans carry the request id.
    /// link_id points at the request whose build served this one
    /// (coalesce leader / cache populator).
    RequestContext trace;
    /// Wall stamps (tracer clock, microseconds) for stage attribution.
    double submit_us = 0.0;
    double pickup_us = 0.0;           ///< 0 until a worker popped it
    double admission_seconds = 0.0;   ///< wall spent inside submit_locked
  };
  using PendingPtr = std::shared_ptr<Pending>;
  static constexpr std::size_t kNumClasses = 3;

  struct ReplayState {
    std::vector<JobResult> results;
    std::mutex results_mutex;
    std::vector<double> worker_clocks;
  };

  // Admission (mutex_ held).
  void submit_locked(PendingPtr job, ReplayState& rs);
  bool shed_for_locked(Priority arriving, std::uint64_t needed_bytes,
                       ReplayState& rs);
  void enqueue_locked(PendingPtr job);
  void remove_queued_locked(const Pending& job);

  // Dispatch.
  PendingPtr pop_group(std::vector<PendingPtr>& members);
  void requeue_front(std::vector<PendingPtr> group);
  void worker_loop(unsigned worker_id, ReplayState& rs);
  void process_group(PendingPtr leader, std::vector<PendingPtr> members,
                     unsigned worker_id, ReplayState& rs);
  int pick_device();

  void record_terminal(const Pending& job, ReplayState& rs, JobState state,
                       JobResult&& partial);

  /// Per-tenant aggregates behind slo_report() (stats_mutex_ held).
  struct TenantCounts {
    std::uint64_t submitted = 0;
    std::array<std::uint64_t, 6> terminal{};  ///< indexed by JobState -
                                              ///< kCompleted
    obs::Histogram* latency = nullptr;  ///< registry-owned, stable address
  };
  TenantCounts& tenant_counts_locked(const std::string& tenant);

  std::vector<cudasim::Device*> devices_;
  ServiceOptions options_;
  TableCache cache_;
  CircuitBreaker breaker_;
  std::atomic<std::size_t> dispatch_rr_{0};  ///< round-robin device cursor

  std::map<std::string, Dataset> datasets_;  ///< immutable during replay

  mutable std::mutex mutex_;  ///< queues + counters below
  std::condition_variable work_available_;
  std::array<std::map<std::string, std::deque<PendingPtr>>, kNumClasses>
      queues_;
  std::array<std::vector<std::string>, kNumClasses> rr_order_;
  std::array<std::size_t, kNumClasses> rr_cursor_{};
  std::size_t queued_count_ = 0;
  std::uint64_t queued_bytes_ = 0;
  std::size_t in_flight_groups_ = 0;
  bool closed_ = false;
  unsigned retry_budget_left_ = 0;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  std::map<std::string, TenantCounts> tenant_stats_;
};

}  // namespace hdbscan::service
