// Request model for the clustering service front-end (DESIGN.md §13).
//
// A job is one (dataset, eps, minpts) clustering request from a tenant.
// Every submitted job ends in exactly one terminal state — the
// RequestOutcome taxonomy below — and the service publishes one obs
// counter per terminal state, so overload behavior is observable without
// parsing logs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/failure.hpp"

namespace hdbscan::service {

/// Scheduling class. Higher values preempt queue space from lower ones:
/// under byte/depth pressure an arriving interactive job sheds queued
/// batch jobs, never the other way around.
enum class Priority : int {
  kBatch = 0,
  kNormal = 1,
  kInteractive = 2,
};

const char* priority_name(Priority p) noexcept;

/// One clustering request.
struct JobSpec {
  std::string tenant = "default";
  std::string dataset;           ///< must be register_dataset()-ed
  float eps = 0.5f;
  int minpts = 4;
  Priority priority = Priority::kNormal;
  /// Modeled-clock deadline (seconds from serve start; 0 = none). A job
  /// whose dispatch-time modeled clock is already past it is terminated
  /// as deadline-exceeded without touching a device.
  double deadline_seconds = 0.0;
  /// Wall-clock deadline armed on the job's CancelToken at dispatch
  /// (seconds; 0 = none). Expiry mid-build aborts the build cooperatively
  /// and returns its pooled buffers.
  double wall_deadline_seconds = 0.0;
  /// Modeled arrival time (seconds from serve start); a job's modeled
  /// latency is finish - arrival.
  double arrival_seconds = 0.0;
  /// Client hung up before serving began: the job's token is cancelled at
  /// submit, so dispatch terminates it without device work.
  bool abandoned = false;
  /// Serve via the fused no-table fast path (core/fused_clustering): the
  /// traversal kernel counts degrees and unions both-core edges in place,
  /// so no neighbor table is built, transferred, or cached. Fused jobs
  /// bypass the TableCache (there is nothing to reuse) but still coalesce
  /// — with other fused jobs of the same (dataset, eps, minpts), since
  /// the union-find threshold is baked into the traversal. The index
  /// backend comes from the service's BatchPolicy (--index=).
  bool fused = false;
  /// Quality knob for this request (DESIGN.md §16). kExact (the default)
  /// inherits the service policy's quality; a non-exact spec overrides it
  /// for this job only. Quality is part of the coalescing identity and of
  /// the TableCache key, so an exact job can never adopt a subsampled
  /// table (and vice versa), and two subsampled jobs share a build only
  /// when mode, rate, and seed all match. kCellGraph is incompatible with
  /// `fused` (the cell graph replaces the traversal the fused path would
  /// fuse into) and such jobs are rejected at admission with a reason.
  QualitySpec quality{};
};

/// Terminal (and transient) states of a request. Every job ends in one of
/// the states at kCompleted or beyond.
enum class JobState : int {
  kQueued = 0,           ///< admitted, waiting for a worker
  kRunning,              ///< on a worker
  kCompleted,            ///< labels produced
  kRejected,             ///< admission refused (see reject_reason)
  kShed,                 ///< evicted from the queue by a higher-priority
                         ///< arrival under overload
  kCancelled,            ///< client abandoned (token cancelled)
  kDeadlineExceeded,     ///< modeled or wall deadline expired
  kFailed,               ///< build failed after the ladder + retry budget
};

const char* job_state_name(JobState s) noexcept;

[[nodiscard]] inline bool is_terminal(JobState s) noexcept {
  return s >= JobState::kCompleted;
}

/// Pipeline stages a request's latency is attributed to. Every wall
/// microsecond between submit and terminal lands in exactly one stage, so
/// per-stage sums reconstruct end-to-end latency (DESIGN.md §14).
enum class Stage : int {
  kQueueWait = 0,  ///< admitted → picked up by a worker
  kAdmission,      ///< pricing + admission control at submit
  kCache,          ///< TableCache probe + clustering from a cached table
  kBuild,          ///< neighbor-table build (device or host fallback)
  kStreamUnion,    ///< streaming consume + finalize (when not folded into
                   ///< the build's overlap window)
  kFinalize,       ///< result assembly + terminal bookkeeping
};

inline constexpr std::size_t kNumStages = 6;

const char* stage_name(Stage s) noexcept;

/// Wall + modeled seconds a request spent in each Stage.
struct StageBreakdown {
  std::array<double, kNumStages> wall_seconds{};
  std::array<double, kNumStages> modeled_seconds{};

  void add(Stage s, double wall, double modeled = 0.0) noexcept {
    wall_seconds[static_cast<std::size_t>(s)] += wall;
    modeled_seconds[static_cast<std::size_t>(s)] += modeled;
  }
  [[nodiscard]] double wall(Stage s) const noexcept {
    return wall_seconds[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] double total_wall_seconds() const noexcept {
    double t = 0.0;
    for (double v : wall_seconds) t += v;
    return t;
  }
  /// Stage holding the largest share of wall time.
  [[nodiscard]] Stage dominant() const noexcept {
    std::size_t best = 0;
    for (std::size_t i = 1; i < kNumStages; ++i) {
      if (wall_seconds[i] > wall_seconds[best]) best = i;
    }
    return static_cast<Stage>(best);
  }
};

/// Everything the service reports back for one job.
struct JobResult {
  JobState state = JobState::kQueued;
  std::string reject_reason;  ///< human-readable cause for kRejected/kShed
  FailureReason failure = FailureReason::kNone;  ///< cause for kFailed &c.

  bool cache_hit = false;   ///< served from the eps-keyed table cache
  bool fused = false;       ///< served by the fused no-table traversal
  bool coalesced = false;   ///< shared another job's build (FanoutSink or
                            ///< shared materialized table)
  bool host_fallback = false;  ///< clustered host-side (no live device)
  unsigned retries = 0;        ///< service-level re-dispatches
  int device_id = -1;          ///< device that ran the build; -1 = none

  /// Admission price (from the estimator's reference calibration).
  std::uint64_t priced_pairs = 0;
  std::uint64_t priced_bytes = 0;

  /// Modeled timeline (reference-hardware seconds from serve start).
  double modeled_start_seconds = 0.0;
  double modeled_finish_seconds = 0.0;
  /// Modeled device seconds this job's build consumed (0 for jobs that
  /// never reached a device: rejected, shed, abandoned, overdue).
  double modeled_device_seconds = 0.0;

  std::int32_t num_clusters = 0;
  std::size_t noise_count = 0;
  std::vector<std::int32_t> labels;  ///< only when keep_labels

  /// Request id minted at admission; every trace span recorded while this
  /// job was being served carries it (0 = never admitted).
  std::uint64_t request_id = 0;
  /// Leader's request id when this job coalesced onto another build.
  std::uint64_t linked_request_id = 0;
  /// Wall/modeled latency attribution per pipeline stage.
  StageBreakdown stages;

  [[nodiscard]] double modeled_latency_seconds(double arrival) const noexcept {
    return modeled_finish_seconds - arrival;
  }
};

}  // namespace hdbscan::service
