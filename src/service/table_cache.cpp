#include "service/table_cache.hpp"

#include <algorithm>
#include <utility>

#include "obs/registry.hpp"

namespace hdbscan::service {

TableCache::Handle TableCache::find(const Key& key) {
  if (!enabled()) return {};
  std::lock_guard lock(mutex_);
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    ++misses_;
    obs::Registry::global().counter("service_cache_misses").add(1);
    return {};
  }
  ++hits_;
  obs::Registry::global().counter("service_cache_hits").add(1);
  it->second.last_used = ++tick_;
  ++it->second.pins;
  return Handle(this, key, it->second.entry);
}

TableCache::Handle TableCache::insert(const Key& key, CachedTable entry) {
  if (!enabled()) return {};
  auto shared = std::make_shared<const CachedTable>(std::move(entry));
  std::lock_guard lock(mutex_);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    if (it->second.pins != 0) {
      // Another group raced us here and its entry is in use; adopt theirs
      // (same key -> byte-identical table by the canonicalize property).
      it->second.last_used = ++tick_;
      ++it->second.pins;
      return Handle(this, key, it->second.entry);
    }
    resident_bytes_ -= it->second.entry->bytes;
    slots_.erase(it);
  }
  Slot slot;
  slot.entry = std::move(shared);
  slot.last_used = ++tick_;
  slot.pins = 1;  // the returned handle's pin — never evicted while held
  resident_bytes_ += slot.entry->bytes;
  auto [pos, inserted] = slots_.emplace(key, std::move(slot));
  evict_over_budget_locked();
  obs::Registry::global()
      .gauge("service_cache_bytes")
      .set(static_cast<double>(resident_bytes_));
  return Handle(this, key, pos->second.entry);
}

void TableCache::evict_over_budget_locked() {
  while (resident_bytes_ > bytes_budget_) {
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second.pins != 0) continue;  // in-flight build: untouchable
      if (victim == slots_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == slots_.end()) return;  // everything left is pinned
    resident_bytes_ -= victim->second.entry->bytes;
    slots_.erase(victim);
    ++evictions_;
    obs::Registry::global().counter("service_cache_evictions").add(1);
  }
}

void TableCache::pin(const Key& key) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(key);
  if (it != slots_.end()) ++it->second.pins;
}

void TableCache::unpin(const Key& key) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(key);
  if (it != slots_.end() && it->second.pins != 0) {
    --it->second.pins;
    if (it->second.pins == 0) evict_over_budget_locked();
  }
}

std::uint64_t TableCache::resident_bytes() const {
  std::lock_guard lock(mutex_);
  return resident_bytes_;
}

std::size_t TableCache::size() const {
  std::lock_guard lock(mutex_);
  return slots_.size();
}

std::uint64_t TableCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t TableCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::uint64_t TableCache::evictions() const {
  std::lock_guard lock(mutex_);
  return evictions_;
}

bool TableCache::contains(const Key& key) const {
  std::lock_guard lock(mutex_);
  return slots_.find(key) != slots_.end();
}

}  // namespace hdbscan::service
