// Workload sources for the service front-end: a synthetic multi-tenant
// Zipf-over-eps generator (the skewed traffic the cache/coalescing design
// targets — a few hot eps values dominate, a long tail of cold ones) and
// a plain-text job-file parser for replay.
//
// Job-file format, one job per line, `#` starts a comment:
//
//   <tenant> <dataset> <eps> <minpts> [priority] [deadline_s] [wall_deadline_s]
//
// priority is batch|normal|interactive (default normal); deadline_s is a
// modeled-clock deadline (0/absent = none); wall_deadline_s arms the
// job's CancelToken (0/absent = none).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/request.hpp"

namespace hdbscan::service {

struct WorkloadSpec {
  unsigned num_jobs = 32;
  unsigned num_tenants = 4;
  std::string dataset = "default";
  /// The eps menu; rank r (by list order) is drawn with probability
  /// proportional to 1/(r+1)^zipf_s — list the hot values first.
  std::vector<float> eps_choices = {0.3f, 0.5f, 0.7f, 0.9f};
  double zipf_s = 1.2;
  std::vector<int> minpts_choices = {4, 8};
  /// Fraction of jobs marked interactive / batch (the rest normal).
  double interactive_fraction = 0.25;
  double batch_fraction = 0.25;
  /// Fraction of jobs whose client hangs up before serving (cancelled).
  double abandoned_fraction = 0.0;
  /// Fraction of jobs carrying a modeled deadline, drawn uniformly from
  /// [deadline_min_seconds, deadline_max_seconds].
  double deadline_fraction = 0.0;
  double deadline_min_seconds = 0.05;
  double deadline_max_seconds = 0.5;
  std::uint64_t seed = 42;
};

/// Deterministic synthetic workload (same spec + seed -> same jobs).
[[nodiscard]] std::vector<JobSpec> make_zipf_workload(const WorkloadSpec& spec);

/// Parses the job-file format above. Throws std::runtime_error with the
/// offending line number on malformed input.
[[nodiscard]] std::vector<JobSpec> parse_jobs(const std::string& text);

/// Reads and parses a job file from disk.
[[nodiscard]] std::vector<JobSpec> load_jobs_file(const std::string& path);

}  // namespace hdbscan::service
