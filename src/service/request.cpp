#include "service/request.hpp"

namespace hdbscan::service {

const char* priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kBatch:
      return "batch";
    case Priority::kNormal:
      return "normal";
    case Priority::kInteractive:
      return "interactive";
  }
  return "normal";
}

const char* job_state_name(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kRejected:
      return "rejected";
    case JobState::kShed:
      return "shed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kDeadlineExceeded:
      return "deadline_exceeded";
    case JobState::kFailed:
      return "failed";
  }
  return "failed";
}

}  // namespace hdbscan::service
