#include "service/request.hpp"

namespace hdbscan::service {

const char* priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kBatch:
      return "batch";
    case Priority::kNormal:
      return "normal";
    case Priority::kInteractive:
      return "interactive";
  }
  return "normal";
}

const char* job_state_name(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kRejected:
      return "rejected";
    case JobState::kShed:
      return "shed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kDeadlineExceeded:
      return "deadline_exceeded";
    case JobState::kFailed:
      return "failed";
  }
  return "failed";
}

const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kAdmission:
      return "admission";
    case Stage::kCache:
      return "cache";
    case Stage::kBuild:
      return "build";
    case Stage::kStreamUnion:
      return "stream_union";
    case Stage::kFinalize:
      return "finalize";
  }
  return "finalize";
}

}  // namespace hdbscan::service
