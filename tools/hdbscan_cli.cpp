// hdbscan_cli — command-line front end for the whole library.
//
//   hdbscan_cli gen <SW1|SW4|SDSS1|SDSS2|SDSS3|uniform> <n> <out.{csv,bin}>
//   hdbscan_cli cluster <in.{csv,bin}> <eps> <minpts> [labels_out] [--map]
//                       [--streaming] [--shards k]
//   hdbscan_cli sweep <in> <eps_lo> <eps_hi> <step> <minpts>
//   hdbscan_cli reuse <in> <eps> <minpts,minpts,...> [threads]
//   hdbscan_cli table <in> <eps> <table_out.bin>
//   hdbscan_cli optics <in> <eps> <minpts> <eps',eps',...>
//   hdbscan_cli chaos <SW1|...|uniform> <n> <seed> [devices]
//   hdbscan_cli stream-smoke [n]
//   hdbscan_cli shard-smoke [n]
//   hdbscan_cli profile <SW1|...|uniform> <n> <variants> [--faults=SEED]
//                       [--selftest]
//
// Global flags (any subcommand, stripped before dispatch):
//   --trace-out=FILE     enable tracing; write Chrome/Perfetto trace JSON
//   --metrics-out=FILE   write the metrics registry as JSON
//
// `chaos` attaches a seeded randomized fault plan to every simulated
// device, runs a resilient multi-device build plus clustering, and exits
// nonzero if any invariant breaks (wrong table, leaked device memory,
// wrong clustering) — the degradation ladder may bend but results may not.
// Fault plans and firings are emitted as tracer events, not printouts.
//
// `profile` runs a Figure-4-style pipelined multi-variant clustering with
// tracing always on and prints a per-phase makespan table plus the
// busy/coverage overlap ratio; --faults arms a deterministic transient
// fault plan (absorbed by the retry ladder) so fault instants appear in
// the trace, and --selftest re-parses the written trace file and checks
// its structural invariants (the trace_smoke CTest target).
//
// Files ending in .bin use the library's binary point format; anything
// else is parsed as "x,y" CSV.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cluster_analysis.hpp"
#include "common/timer.hpp"
#include "core/cell_graph.hpp"
#include "core/hybrid_dbscan.hpp"
#include "core/pipeline.hpp"
#include "core/report_metrics.hpp"
#include "core/reuse.hpp"
#include "core/sharded_build.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/device.hpp"
#include "cudasim/fault.hpp"
#include "data/datasets.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan.hpp"
#include "dbscan/dbscan_parallel.hpp"
#include "dbscan/optics.hpp"
#include "dbscan/streaming_dbscan.hpp"
#include "dbscan/table_io.hpp"
#include "index/grid_index.hpp"
#include "obs/analyzer.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "service/scheduler.hpp"
#include "service/workload.hpp"

namespace {

using namespace hdbscan;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::vector<Point2> load_points(const std::string& path) {
  return ends_with(path, ".bin") ? data::load_binary(path)
                                 : data::load_csv(path);
}

void save_points(const std::string& path, const std::vector<Point2>& points) {
  if (ends_with(path, ".bin")) {
    data::save_binary(path, points);
  } else {
    data::save_csv(path, points);
  }
}

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    out.push_back(std::atoi(csv.c_str() + pos));
    const std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<float> parse_float_list(const std::string& csv) {
  std::vector<float> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    out.push_back(std::strtof(csv.c_str() + pos, nullptr));
    const std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hdbscan_cli gen <SW1|SW4|SDSS1|SDSS2|SDSS3|uniform> <n> <out>\n"
      "  hdbscan_cli cluster <in> <eps> <minpts> [labels_out] [--map]"
      " [--streaming] [--fused] [--index=grid|bvh] [--shards k]\n"
      "               [--quality=exact|subsampled|cellgraph]"
      " [--sample-rate=S] [--quality-seed=SEED]\n"
      "  hdbscan_cli sweep <in> <eps_lo> <eps_hi> <step> <minpts>\n"
      "  hdbscan_cli reuse <in> <eps> <minpts,minpts,...> [threads]\n"
      "  hdbscan_cli table <in> <eps> <table_out.bin>\n"
      "  hdbscan_cli optics <in> <eps> <minpts> <eps',eps',...>\n"
      "  hdbscan_cli chaos <SW1|SW4|SDSS1|SDSS2|SDSS3|uniform> <n> <seed>"
      " [devices]\n"
      "  hdbscan_cli perf-smoke [n]\n"
      "  hdbscan_cli fused-smoke [n]\n"
      "  hdbscan_cli approx-smoke [n]\n"
      "  hdbscan_cli stream-smoke [n]\n"
      "  hdbscan_cli shard-smoke [n]\n"
      "  hdbscan_cli profile <SW1|SW4|SDSS1|SDSS2|SDSS3|uniform> <n>"
      " <variants> [--faults=SEED] [--selftest]\n"
      "  hdbscan_cli serve <SW1|...|uniform> <n> <jobs> [devices]"
      " [--workers=W] [--no-cache] [--no-coalesce] [--depth=D]"
      " [--budget-mb=M] [--seed=S]\n"
      "  hdbscan_cli replay <jobs_file> <name>=<points_file> [...]"
      " [--eps-ref=E] [serve flags]\n"
      "  hdbscan_cli serve-smoke [n]\n"
      "  hdbscan_cli overload-smoke [n]\n"
      "  hdbscan_cli explain <trace.json> [--top=K]\n"
      "  hdbscan_cli explain-smoke [n]\n"
      "serve/replay flags:\n"
      "  --slo-p99=SECONDS    per-tenant p99 latency target for the SLO"
      " report\n"
      "global flags (any subcommand):\n"
      "  --trace-out=FILE     enable tracing, write Perfetto trace JSON\n"
      "  --metrics-out=FILE   write the metrics registry as JSON\n"
      "  --postmortem-dir=DIR arm the flight recorder: job failures,"
      " breaker\n"
      "                       opens and device losses dump post-mortem"
      " JSON there\n");
  return 2;
}

/// Global observability flags, stripped from argv before dispatch.
struct ObsOptions {
  std::string trace_out;
  std::string metrics_out;
  std::string postmortem_dir;
};

int cmd_gen(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string kind = argv[2];
  const auto n = static_cast<std::size_t>(std::atoll(argv[3]));
  std::vector<Point2> points;
  if (kind == "uniform") {
    points = data::generate_uniform(n, 1, 35.0f, 35.0f);
  } else {
    points = data::make_dataset(kind, n);
  }
  save_points(argv[4], points);
  std::printf("wrote %zu points to %s\n", points.size(), argv[4]);
  return 0;
}

int cmd_cluster(int argc, char** argv) {
  // Strip --streaming/--fused/--index/--shards wherever they appear so the
  // positional args keep their places.
  bool streaming = false;
  bool fused = false;
  IndexBackend backend = IndexBackend::kGrid;
  unsigned shards = 0;
  QualitySpec quality;
  bool sample_rate_set = false;
  for (int i = 2; i < argc;) {
    int consumed = 0;
    if (std::strcmp(argv[i], "--streaming") == 0) {
      streaming = true;
      consumed = 1;
    } else if (std::strcmp(argv[i], "--fused") == 0) {
      fused = true;
      consumed = 1;
    } else if (std::strncmp(argv[i], "--quality=", 10) == 0) {
      const auto parsed = parse_cluster_quality(argv[i] + 10);
      if (!parsed) {
        std::fprintf(stderr, "cluster: unknown quality '%s'"
                     " (exact|subsampled|cellgraph)\n", argv[i] + 10);
        return 2;
      }
      quality.mode = *parsed;
      consumed = 1;
    } else if (std::strncmp(argv[i], "--sample-rate=", 14) == 0) {
      quality.sample_rate = std::strtof(argv[i] + 14, nullptr);
      sample_rate_set = true;
      consumed = 1;
    } else if (std::strncmp(argv[i], "--quality-seed=", 15) == 0) {
      quality.seed = std::strtoull(argv[i] + 15, nullptr, 10);
      consumed = 1;
    } else if (std::strncmp(argv[i], "--index=", 8) == 0) {
      const auto parsed = parse_index_backend(argv[i] + 8);
      if (!parsed) {
        std::fprintf(stderr, "cluster: unknown index backend '%s'"
                     " (grid|bvh)\n", argv[i] + 8);
        return 2;
      }
      backend = *parsed;
      consumed = 1;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<unsigned>(std::max(1, std::atoi(argv[i + 1])));
      consumed = 2;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<unsigned>(std::max(1, std::atoi(argv[i] + 9)));
      consumed = 1;
    }
    if (consumed == 0) {
      ++i;
      continue;
    }
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
  }
  if (argc < 5) return usage();
  if (quality.mode == ClusterQuality::kCellGraph && fused) {
    std::fprintf(stderr,
                 "cluster: --quality=cellgraph is incompatible with --fused:"
                 " the cell graph replaces the traversal kernel the fused"
                 " path would fuse into\n");
    return 2;
  }
  if (sample_rate_set && quality.mode != ClusterQuality::kSubsampled) {
    std::fprintf(stderr,
                 "cluster: --sample-rate requires --quality=subsampled\n");
    return 2;
  }
  if (quality.mode == ClusterQuality::kSubsampled &&
      !(quality.sample_rate > 0.0f && quality.sample_rate <= 1.0f)) {
    std::fprintf(stderr, "cluster: --sample-rate must be in (0, 1], got %g\n",
                 static_cast<double>(quality.sample_rate));
    return 2;
  }
  const auto points = load_points(argv[2]);
  const float eps = std::strtof(argv[3], nullptr);
  const int minpts = std::atoi(argv[4]);
  const bool want_map = argc > 5 && std::string(argv[argc - 1]) == "--map";
  const ClusterMode mode = fused       ? ClusterMode::kFused
                           : streaming ? ClusterMode::kStreaming
                                       : ClusterMode::kBatchTable;
  BatchPolicy policy;
  policy.index_backend = backend;
  policy.quality = quality;

  HybridTimings timings;
  ClusterResult result;
  if (shards > 1) {
    // One simulated device per shard: the spatially sharded build path.
    std::vector<std::unique_ptr<cudasim::Device>> fleet;
    std::vector<cudasim::Device*> fleet_ptrs;
    for (unsigned d = 0; d < shards; ++d) {
      fleet.push_back(std::make_unique<cudasim::Device>());
      fleet_ptrs.push_back(fleet.back().get());
    }
    ShardedBuildOptions options;
    options.num_shards = shards;
    options.policy = policy;
    result = hybrid_dbscan(fleet_ptrs, points, eps, minpts, &timings,
                           options, mode);
    const BuildReport& br = timings.build_report;
    std::printf("sharded build: %u shards on %u devices, %llu halo ghosts"
                " (%.1f%% of points), %llu cross-shard pairs\n",
                br.shards, shards,
                static_cast<unsigned long long>(br.halo_ghost_points),
                100.0 * static_cast<double>(br.halo_ghost_points) /
                    static_cast<double>(std::max<std::size_t>(1,
                                                              points.size())),
                static_cast<unsigned long long>(br.cross_shard_pairs));
  } else {
    cudasim::Device device;
    result = hybrid_dbscan(device, points, eps, minpts, &timings, policy,
                           mode);
  }
  std::printf("%zu points, eps=%g minpts=%d -> %d clusters, %zu noise"
              " (%.3f s, modeled %.3f s)\n",
              points.size(), eps, minpts, result.num_clusters,
              result.noise_count(), timings.total_seconds,
              timings.modeled_total_seconds);
  if (quality.mode == ClusterQuality::kSubsampled) {
    std::printf("quality=subsampled rate=%g seed=%llu: core threshold"
                " rescaled %d -> %d (SNG), labels seed-deterministic\n",
                static_cast<double>(quality.sample_rate),
                static_cast<unsigned long long>(quality.seed), minpts,
                quality.scaled_minpts(minpts));
  } else if (quality.mode == ClusterQuality::kCellGraph) {
    std::printf("quality=cellgraph: no table materialized, %llu boundary"
                " distance tests\n",
                static_cast<unsigned long long>(
                    timings.build_report.total_pairs));
  }
  if (timings.streamed) {
    std::printf("%s: %.0f%% of the union work overlapped the build"
                " (%.3f s hidden, %.3f s tail), consumer peak %zu bytes\n",
                timings.fused ? "fused" : "streaming",
                100.0 * timings.overlap_fraction, timings.consume_seconds,
                timings.finalize_seconds, timings.peak_consumer_bytes);
  }
  if (timings.fused) {
    std::printf("fused [%s index]: no table materialized, %llu pairs"
                " traversed, %llu parked-edge bytes D2H\n",
                std::string(to_string(
                                timings.build_report.index_backend))
                    .c_str(),
                static_cast<unsigned long long>(
                    timings.build_report.total_pairs),
                static_cast<unsigned long long>(
                    timings.build_report.d2h_bytes));
  }

  const auto stats = analysis::compute_cluster_stats(points, result);
  for (std::size_t i = 0; i < stats.size() && i < 10; ++i) {
    std::printf("  cluster %2d: %7zu pts  centroid (%.2f, %.2f)\n",
                stats[i].cluster, stats[i].size, stats[i].centroid.x,
                stats[i].centroid.y);
  }
  if (want_map) {
    std::printf("%s", analysis::ascii_cluster_map(points, result, 72, 24).c_str());
  }
  if (argc > 5 && std::string(argv[5]) != "--map") {
    std::FILE* out = std::fopen(argv[5], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[5]);
      return 1;
    }
    for (const std::int32_t l : result.labels) std::fprintf(out, "%d\n", l);
    std::fclose(out);
    std::printf("labels written to %s\n", argv[5]);
  }
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 7) return usage();
  const auto points = load_points(argv[2]);
  const float lo = std::strtof(argv[3], nullptr);
  const float hi = std::strtof(argv[4], nullptr);
  const float step = std::strtof(argv[5], nullptr);
  const int minpts = std::atoi(argv[6]);
  if (!(step > 0.0f) || hi < lo) {
    std::fprintf(stderr, "bad sweep range\n");
    return 2;
  }
  std::vector<Variant> variants;
  for (float e = lo; e <= hi + 1e-6f; e += step) variants.push_back({e, minpts});

  cudasim::Device device;
  const PipelineReport report =
      run_multi_clustering(device, points, variants, {});
  std::printf("%6s %10s %10s %12s %12s\n", "eps", "clusters", "noise",
              "T (s)", "DBSCAN (s)");
  for (const VariantTiming& t : report.variants) {
    std::printf("%6.3f %10d %10zu %12.3f %12.3f\n", t.variant.eps,
                t.num_clusters, t.noise_count, t.table_seconds,
                t.dbscan_seconds);
  }
  std::printf("pipelined total: %.3f s for %zu variants\n",
              report.total_seconds, variants.size());
  return 0;
}

int cmd_reuse(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto points = load_points(argv[2]);
  const float eps = std::strtof(argv[3], nullptr);
  const std::vector<int> minpts = parse_int_list(argv[4]);
  const unsigned threads =
      argc > 5 ? static_cast<unsigned>(std::atoi(argv[5])) : 4u;
  if (minpts.empty()) return usage();

  cudasim::Device device;
  std::vector<ClusterResult> results;
  const ReuseReport report =
      cluster_minpts_sweep(device, points, eps, minpts, threads, {}, &results);
  std::printf("T built once (%.3f s); %zu minpts variants on %u threads"
              " (%.3f s):\n",
              report.table_seconds, minpts.size(), threads,
              report.dbscan_wall_seconds);
  for (std::size_t i = 0; i < minpts.size(); ++i) {
    std::printf("  minpts %5d -> %6d clusters, %8zu noise\n", minpts[i],
                results[i].num_clusters, results[i].noise_count());
  }
  return 0;
}

int cmd_table(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto points = load_points(argv[2]);
  const float eps = std::strtof(argv[3], nullptr);
  cudasim::Device device;
  const GridIndex index = build_grid_index(points, eps);
  NeighborTableBuilder builder(device);
  BuildReport report;
  const NeighborTable table = builder.build(index, eps, &report);
  save_neighbor_table(argv[4], table, eps);
  std::printf("neighbor table: %llu pairs in %u batches (%.3f s) -> %s\n",
              static_cast<unsigned long long>(report.total_pairs),
              report.batches_run, report.table_seconds, argv[4]);
  std::printf("note: the table indexes the grid ordering; pair it with the"
              " same eps when loading.\n");
  return 0;
}

int cmd_optics(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto points = load_points(argv[2]);
  const float eps = std::strtof(argv[3], nullptr);
  const int minpts = std::atoi(argv[4]);
  const std::vector<float> eps_primes = parse_float_list(argv[5]);

  cudasim::Device device;
  const GridIndex index = build_grid_index(points, eps);
  NeighborTableBuilder builder(device);
  const NeighborTable table = builder.build(index, eps);
  const OpticsResult ordering = optics(index.points, table, eps, minpts);
  std::printf("%8s %10s %10s\n", "eps'", "clusters", "noise");
  for (const float ep : eps_primes) {
    if (ep > eps) {
      std::printf("%8.3f   (skipped: exceeds table eps %g)\n", ep, eps);
      continue;
    }
    const ClusterResult r = extract_dbscan_clustering(ordering, ep);
    std::printf("%8.3f %10d %10zu\n", ep, r.num_clusters, r.noise_count());
  }
  return 0;
}

int cmd_chaos(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string kind = argv[2];
  const auto n = static_cast<std::size_t>(std::atoll(argv[3]));
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
  const unsigned num_devices =
      argc > 5 ? std::max(1, std::atoi(argv[5])) : 2u;
  const float eps = 0.5f;
  const int minpts = 4;

  // Fault plans and firings flow through the tracer (instants in the
  // "chaos" / "fault" categories) instead of per-device printouts, so a
  // --trace-out run shows exactly where each fault landed on the timeline.
  if (obs::kTraceCompiled && !obs::tracing_enabled()) {
    obs::Tracer::global().enable();
  }
  obs::set_thread_track(obs::kHostPid, "chaos");

  const std::vector<Point2> points =
      kind == "uniform" ? data::generate_uniform(n, seed, 35.0f, 35.0f)
                        : data::make_dataset(kind, n);
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable oracle = build_neighbor_table_host_parallel(index, eps);
  oracle.canonicalize();

  cudasim::SimulationOptions sim;
  sim.throttle_transfers = false;
  sim.throttle_pinned_alloc = false;
  std::vector<std::unique_ptr<cudasim::Device>> devices;
  std::vector<cudasim::Device*> device_ptrs;
  for (unsigned d = 0; d < num_devices; ++d) {
    const auto plan = cudasim::FaultPlan::randomized(seed + 17 * d);
    TRACE_INSTANT("chaos", "plan d%u: %s", d, plan.describe().c_str());
    if (!obs::kTraceCompiled) {
      // Tracing compiled out: fall back to the legacy printout so the
      // plans stay observable.
      std::printf("device %u plan: %s\n", d, plan.describe().c_str());
    }
    cudasim::SimulationOptions opt = sim;
    opt.fault = std::make_shared<cudasim::FaultInjector>(plan);
    devices.push_back(
        std::make_unique<cudasim::Device>(cudasim::DeviceConfig{}, opt));
    device_ptrs.push_back(devices.back().get());
  }

  // Many small batches so the scripted faults land mid-build; every rung
  // of the ladder is armed, down to the host fallback.
  BatchPolicy policy;
  policy.estimated_total_override = std::max<std::uint64_t>(
      1, oracle.total_pairs());
  policy.static_threshold_pairs = 1;
  policy.static_buffer_pairs =
      std::max<std::uint64_t>(1, oracle.total_pairs() / 24);
  policy.resilience.host_fallback = true;

  NeighborTableBuilder builder(device_ptrs, policy);
  BuildReport report;
  NeighborTable table;
  try {
    table = builder.build(index, eps, &report);
  } catch (const std::exception& e) {
    // The wrapper classified the escape into the structured taxonomy
    // before rethrowing — print it so a dead chaos run is diagnosable
    // from the one-line summary alone.
    std::fprintf(stderr, "chaos: build failed [%s]: %s\n",
                 failure_reason_name(report.failure), e.what());
    return 1;
  }
  std::printf(
      "build survived: %u batches, %llu pairs | retries: %u transient,"
      " %u alloc | %u devices lost, %u batches failed over, %u finished"
      " on host%s | failure=%s\n",
      report.batches_run,
      static_cast<unsigned long long>(report.total_pairs),
      report.transient_retries, report.alloc_retries, report.devices_lost,
      report.failover_batches, report.host_fallback_batches,
      report.used_host_fallback ? " (host fallback)" : "",
      failure_reason_name(report.failure));

  // Roll the per-device end state into the metrics registry (exported via
  // --metrics-out) and summarize what the tracer saw of the fault storm.
  for (unsigned d = 0; d < num_devices; ++d) {
    publish_device_metrics(devices[d]->id(), devices[d]->metrics());
  }
  if (obs::kTraceCompiled) {
    std::size_t fault_events = 0;
    for (const obs::TraceEvent& e : obs::Tracer::global().snapshot()) {
      if (e.type == obs::EventType::kInstant &&
          std::strcmp(e.category, "fault") == 0) {
        ++fault_events;
      }
    }
    std::printf("chaos: %zu fault events traced across %u devices\n",
                fault_events, num_devices);
  }

  int violations = 0;
  table.canonicalize();
  if (!table.identical_to(oracle)) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATED: degraded table differs from the host"
                 " oracle (%zu vs %zu pairs)\n",
                 table.total_pairs(), oracle.total_pairs());
    ++violations;
  }
  for (unsigned d = 0; d < num_devices; ++d) {
    devices[d]->pool().trim();  // cached pool scratch is not a leak
    if (devices[d]->used_global_bytes() != 0) {
      std::fprintf(stderr,
                   "INVARIANT VIOLATED: device %u leaks %zu bytes after the"
                   " build\n",
                   d, devices[d]->used_global_bytes());
      ++violations;
    }
  }
  const ClusterResult got = dbscan_neighbor_table(table, minpts);
  const ClusterResult want = dbscan_neighbor_table(oracle, minpts);
  if (got.num_clusters != want.num_clusters ||
      got.noise_count() != want.noise_count()) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATED: clustering differs (%d/%zu vs"
                 " %d/%zu clusters/noise)\n",
                 got.num_clusters, got.noise_count(), want.num_clusters,
                 want.noise_count());
    ++violations;
  }
  if (violations != 0) return 1;
  std::printf("chaos: all invariants held (%zu points, %u devices,"
              " seed %llu)\n",
              points.size(), num_devices,
              static_cast<unsigned long long>(seed));
  return 0;
}

// Streaming overlap gate (the stream_smoke CTest target): builds one
// variant in ClusterMode::kStreaming and checks (1) per-point degrees
// match the host oracle — any dropped or doubled batch delivery on the
// retry/split/failover ladder skews one — (2) the streamed labels are
// DBSCAN-equivalent to batch DBSCAN over the oracle table, and (3) a
// nonzero share of the union work actually overlapped the build. Also run
// under the thread-sanitizer config: consume() executes concurrently on
// the builder's stream threads.
int cmd_stream_smoke(int argc, char** argv) {
  const std::size_t n =
      argc >= 3 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8000;
  const float eps = 0.35f;
  const int minpts = 4;
  const auto points = data::generate_space_weather(
      n, 9, {.width = 10.0f, .height = 10.0f});
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host_parallel(index, eps);

  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;

  // Many small batches so deliveries genuinely interleave with the fill.
  BatchPolicy policy;
  policy.estimated_total_override =
      std::max<std::uint64_t>(1, oracle.total_pairs());
  policy.static_threshold_pairs = 1;
  policy.static_buffer_pairs =
      std::max<std::uint64_t>(1, oracle.total_pairs() / 16);

  cudasim::Device device({}, opt);
  StreamingDbscan consumer(index.size(), minpts);
  NeighborTableBuilder builder(device, policy);
  BuildReport report;
  builder.build(index, eps, &report, &consumer,
                /*materialize_table=*/false);

  int violations = 0;
  for (PointId i = 0; i < index.size(); ++i) {
    if (consumer.degree(i) != oracle.neighbor_count(i)) {
      std::fprintf(stderr,
                   "stream_smoke FAILED: degree mismatch at point %u"
                   " (%u vs oracle %u) — batch delivered twice or lost\n",
                   i, consumer.degree(i), oracle.neighbor_count(i));
      ++violations;
      break;
    }
  }

  const ClusterResult streamed = consumer.finalize();
  const ClusterResult batch = dbscan_parallel(oracle, minpts);
  const auto outcome = compare_clusterings(streamed, batch, oracle, minpts);
  if (!outcome.equivalent) {
    std::fprintf(stderr, "stream_smoke FAILED: %s\n",
                 outcome.diagnostic.c_str());
    ++violations;
  }

  const StreamingDbscan::Stats& st = consumer.stats();
  const std::uint64_t table_bytes =
      oracle.total_pairs() * sizeof(PointId) +
      oracle.num_points() * 2 * sizeof(std::uint32_t);
  std::printf("stream_smoke: n=%zu batches=%llu edges=%llu streamed=%.3f"
              " overlap=%.3f consume=%.6fs tail=%.6fs peak=%zuB"
              " (table would be %lluB)\n",
              points.size(),
              static_cast<unsigned long long>(report.sink_batches),
              static_cast<unsigned long long>(st.edges_seen),
              st.streamed_fraction(), st.overlap_fraction(),
              st.consume_seconds, st.finalize_seconds,
              consumer.peak_memory_bytes(),
              static_cast<unsigned long long>(table_bytes));
  if (report.sink_batches == 0) {
    std::fprintf(stderr, "stream_smoke FAILED: no batch was delivered\n");
    ++violations;
  }
  if (!(st.overlap_fraction() > 0.0)) {
    std::fprintf(stderr,
                 "stream_smoke FAILED: no union work overlapped the build"
                 " (overlap fraction %.3f)\n",
                 st.overlap_fraction());
    ++violations;
  }
  if (report.table_materialized) {
    std::fprintf(stderr,
                 "stream_smoke FAILED: the table was materialized anyway\n");
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}

// Sharded-build gate (the shard_smoke CTest target): k=3 spatial shards on
// three devices, one of which is scripted to die mid-build, with a
// streaming consumer attached AND the table materialized. Checks that the
// re-partition rung put every slab somewhere (exact table vs the host
// oracle, exact per-point degrees through the dedup ledger), that the
// report accounts the loss, and that no survivor leaks device memory.
// Also run under the thread-sanitizer config: shard builds run
// concurrently on their own host threads and share the ledger and the
// downstream consumer.
int cmd_shard_smoke(int argc, char** argv) {
  const std::size_t n =
      argc >= 3 ? static_cast<std::size_t>(std::atoll(argv[2])) : 6000;
  const float eps = 0.35f;
  const int minpts = 4;
  const auto points = data::generate_space_weather(
      n, 13, {.width = 10.0f, .height = 10.0f});
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable oracle = build_neighbor_table_host_parallel(index, eps);

  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  std::vector<std::unique_ptr<cudasim::Device>> devices;
  std::vector<cudasim::Device*> device_ptrs;
  for (unsigned d = 0; d < 3; ++d) {
    cudasim::SimulationOptions dev_opt = opt;
    if (d == 1) {
      cudasim::FaultPlan lost;
      lost.lost_at_op = 40;  // dies with its shard mid-build
      dev_opt.fault = std::make_shared<cudasim::FaultInjector>(lost);
    }
    devices.push_back(
        std::make_unique<cudasim::Device>(cudasim::DeviceConfig{}, dev_opt));
    device_ptrs.push_back(devices.back().get());
  }

  ShardedBuildOptions options;
  options.num_shards = 3;
  options.policy.estimated_total_override =
      std::max<std::uint64_t>(1, oracle.total_pairs());
  options.policy.static_threshold_pairs = 1;
  options.policy.static_buffer_pairs =
      std::max<std::uint64_t>(1, oracle.total_pairs() / 24);

  StreamingDbscan consumer(index.size(), minpts);
  BuildReport report;
  NeighborTable table = build_sharded_neighbor_table(
      device_ptrs, index, eps, options, &report, &consumer,
      /*materialize_table=*/true);

  std::printf("shard_smoke: n=%zu shards=%u repartitions=%u lost=%u"
              " ghosts=%llu cross=%llu modeled=%.6fs\n",
              points.size(), report.shards, report.shard_repartitions,
              report.devices_lost,
              static_cast<unsigned long long>(report.halo_ghost_points),
              static_cast<unsigned long long>(report.cross_shard_pairs),
              report.modeled_table_seconds);

  int violations = 0;
  table.canonicalize();
  oracle.canonicalize();
  if (!table.identical_to(oracle)) {
    std::fprintf(stderr,
                 "shard_smoke FAILED: merged table differs from the host"
                 " oracle (%zu vs %zu pairs)\n",
                 table.total_pairs(), oracle.total_pairs());
    ++violations;
  }
  for (PointId i = 0; i < index.size(); ++i) {
    if (consumer.degree(i) != oracle.neighbor_count(i)) {
      std::fprintf(stderr,
                   "shard_smoke FAILED: degree mismatch at point %u"
                   " (%u vs oracle %u) — cross-shard edge delivered twice"
                   " or lost\n",
                   i, consumer.degree(i), oracle.neighbor_count(i));
      ++violations;
      break;
    }
  }
  const ClusterResult streamed = consumer.finalize();
  const ClusterResult batch = dbscan_parallel(oracle, minpts);
  const auto outcome = compare_clusterings(streamed, batch, oracle, minpts);
  if (!outcome.equivalent) {
    std::fprintf(stderr, "shard_smoke FAILED: %s\n",
                 outcome.diagnostic.c_str());
    ++violations;
  }
  if (report.devices_lost != 1) {
    std::fprintf(stderr,
                 "shard_smoke FAILED: expected exactly one device loss,"
                 " report says %u\n",
                 report.devices_lost);
    ++violations;
  }
  if (report.shard_repartitions == 0) {
    std::fprintf(stderr,
                 "shard_smoke FAILED: the dead shard was never"
                 " re-partitioned\n");
    ++violations;
  }
  for (unsigned d = 0; d < devices.size(); ++d) {
    if (devices[d]->lost()) continue;
    devices[d]->pool().trim();  // cached pool scratch is not a leak
    if (devices[d]->used_global_bytes() != 0) {
      std::fprintf(stderr,
                   "shard_smoke FAILED: device %u leaks %zu bytes\n", d,
                   devices[d]->used_global_bytes());
      ++violations;
    }
  }
  if (violations == 0) {
    std::printf("shard_smoke: all invariants held (1 device lost, labels"
                " and table exact)\n");
  }
  return violations == 0 ? 0 : 1;
}

// Perf regression gate (the perf_smoke CTest target): a tiny A/B build of
// the same index under ScanMode::kFull and ScanMode::kHalf. The half scan
// must produce the same table while spending at most 0.6x the distance-test
// FLOPs — if pair pruning ever regresses, this exits nonzero.
int cmd_perf_smoke(int argc, char** argv) {
  const std::size_t n =
      argc >= 3 ? static_cast<std::size_t>(std::atoll(argv[2])) : 6000;
  const float eps = 0.3f;
  const auto points = data::generate_uniform(n, 5, 8.0f, 8.0f);
  const GridIndex index = build_grid_index(points, eps);

  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;

  BatchPolicy policy;
  BuildReport full_report, half_report;
  policy.scan_mode = ScanMode::kFull;
  cudasim::Device full_dev({}, opt);
  NeighborTable full =
      NeighborTableBuilder(full_dev, policy)
          .build(index, eps, &full_report);
  policy.scan_mode = ScanMode::kHalf;
  cudasim::Device half_dev({}, opt);
  NeighborTable half =
      NeighborTableBuilder(half_dev, policy)
          .build(index, eps, &half_report);

  const double ratio =
      full_report.kernel_flops == 0
          ? 1.0
          : static_cast<double>(half_report.kernel_flops) /
                static_cast<double>(full_report.kernel_flops);
  std::printf("perf_smoke: n=%zu flops full=%llu half=%llu ratio=%.3f"
              " modeled full=%.6fs half=%.6fs d2h full=%llu half=%llu\n",
              points.size(),
              static_cast<unsigned long long>(full_report.kernel_flops),
              static_cast<unsigned long long>(half_report.kernel_flops),
              ratio, full_report.modeled_table_seconds,
              half_report.modeled_table_seconds,
              static_cast<unsigned long long>(full_report.d2h_bytes),
              static_cast<unsigned long long>(half_report.d2h_bytes));

  int violations = 0;
  if (ratio > 0.6) {
    std::fprintf(stderr,
                 "perf_smoke FAILED: half/full flop ratio %.3f > 0.6\n",
                 ratio);
    ++violations;
  }
  full.canonicalize();
  half.canonicalize();
  if (!half.identical_to(full)) {
    std::fprintf(stderr,
                 "perf_smoke FAILED: half table differs from full"
                 " (%zu vs %zu pairs)\n",
                 half.total_pairs(), full.total_pairs());
    ++violations;
  }
  if (half_report.d2h_bytes >= full_report.d2h_bytes) {
    std::fprintf(stderr,
                 "perf_smoke FAILED: half scan did not reduce D2H traffic\n");
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}

// Fused no-table gate (the fused_smoke CTest target): clusters a skewed
// dataset four ways — batch table (the oracle), streaming-grid, fused on
// the grid backend, and fused on the BVH backend (the latter across two
// devices, so the fused pump threads and the shared union-find run
// concurrently — the thread-sanitizer surface). Exits nonzero unless both
// fused label vectors are bit-identical to batch DBSCAN, no table was
// materialized, fused D2H traffic (parked edges only) undercuts the batch
// build's, fused-BVH beats streaming-grid on modeled time, and no device
// leaks.
int cmd_fused_smoke(int argc, char** argv) {
  const std::size_t n =
      argc >= 3 ? static_cast<std::size_t>(std::atoll(argv[2])) : 6000;
  const float eps = 0.35f;
  const int minpts = 4;
  // Skewed density: the workload where leaf-pruned BVH traversal beats
  // eps-cell stenciling (overflowing hot cells).
  const auto points = data::generate_space_weather(
      n, 21, {.width = 10.0f, .height = 10.0f});

  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;

  // Batch-table oracle.
  HybridTimings batch_t;
  cudasim::Device batch_dev({}, opt);
  const ClusterResult batch =
      hybrid_dbscan(batch_dev, points, eps, minpts, &batch_t);

  // Streaming-grid: the fastest pre-existing mode, the bar to beat.
  HybridTimings stream_t;
  cudasim::Device stream_dev({}, opt);
  const ClusterResult streamed =
      hybrid_dbscan(stream_dev, points, eps, minpts, &stream_t, {},
                    ClusterMode::kStreaming);

  // Fused on the grid backend, single device.
  BatchPolicy grid_policy;
  HybridTimings fg_t;
  cudasim::Device fused_grid_dev({}, opt);
  const ClusterResult fused_grid =
      hybrid_dbscan(fused_grid_dev, points, eps, minpts, &fg_t, grid_policy,
                    ClusterMode::kFused);

  // Fused on the BVH backend, single device (the modeled-time contender).
  BatchPolicy bvh_policy;
  bvh_policy.index_backend = IndexBackend::kBvh;
  HybridTimings fb_t;
  cudasim::Device fused_bvh_dev({}, opt);
  const ClusterResult fused_bvh =
      hybrid_dbscan(fused_bvh_dev, points, eps, minpts, &fb_t, bvh_policy,
                    ClusterMode::kFused);

  // Fused BVH across two devices: interleaved batches union into one
  // shared AtomicUnionFind from concurrent pump threads.
  std::vector<std::unique_ptr<cudasim::Device>> fleet;
  std::vector<cudasim::Device*> fleet_ptrs;
  for (unsigned d = 0; d < 2; ++d) {
    fleet.push_back(
        std::make_unique<cudasim::Device>(cudasim::DeviceConfig{}, opt));
    fleet_ptrs.push_back(fleet.back().get());
  }
  ShardedBuildOptions fleet_opt;
  fleet_opt.policy = bvh_policy;
  HybridTimings fleet_t;
  const ClusterResult fused_fleet = hybrid_dbscan(
      fleet_ptrs, points, eps, minpts, &fleet_t, fleet_opt,
      ClusterMode::kFused);

  std::printf(
      "fused_smoke: n=%zu modeled batch=%.6fs stream-grid=%.6fs"
      " fused-grid=%.6fs fused-bvh=%.6fs fused-bvh-x2=%.6fs\n",
      points.size(), batch_t.modeled_total_seconds,
      stream_t.modeled_total_seconds, fg_t.modeled_total_seconds,
      fb_t.modeled_total_seconds, fleet_t.modeled_total_seconds);
  std::printf(
      "fused_smoke: d2h batch=%llu fused-bvh=%llu (parked edges only),"
      " pairs traversed=%llu\n",
      static_cast<unsigned long long>(batch_t.build_report.d2h_bytes),
      static_cast<unsigned long long>(fb_t.build_report.d2h_bytes),
      static_cast<unsigned long long>(fb_t.build_report.total_pairs));

  int violations = 0;
  auto expect_identical = [&](const ClusterResult& got, const char* what) {
    if (got.labels != batch.labels) {
      std::fprintf(stderr,
                   "fused_smoke FAILED: %s labels are not bit-identical to"
                   " batch DBSCAN (%d vs %d clusters, %zu vs %zu noise)\n",
                   what, got.num_clusters, batch.num_clusters,
                   got.noise_count(), batch.noise_count());
      ++violations;
    }
  };
  expect_identical(streamed, "streaming-grid");
  expect_identical(fused_grid, "fused-grid");
  expect_identical(fused_bvh, "fused-bvh");
  expect_identical(fused_fleet, "fused-bvh two-device");

  for (const HybridTimings* t : {&fg_t, &fb_t, &fleet_t}) {
    if (!t->fused || t->build_report.table_materialized) {
      std::fprintf(stderr,
                   "fused_smoke FAILED: a fused run materialized the"
                   " table\n");
      ++violations;
    }
  }
  if (fb_t.build_report.d2h_bytes >= batch_t.build_report.d2h_bytes) {
    std::fprintf(stderr,
                 "fused_smoke FAILED: fused D2H (%llu B) does not undercut"
                 " the batch build (%llu B)\n",
                 static_cast<unsigned long long>(
                     fb_t.build_report.d2h_bytes),
                 static_cast<unsigned long long>(
                     batch_t.build_report.d2h_bytes));
    ++violations;
  }
  if (!(fb_t.modeled_total_seconds < stream_t.modeled_total_seconds)) {
    std::fprintf(stderr,
                 "fused_smoke FAILED: fused-BVH modeled %.6fs does not beat"
                 " streaming-grid %.6fs on the skewed workload\n",
                 fb_t.modeled_total_seconds, stream_t.modeled_total_seconds);
    ++violations;
  }
  auto expect_leak_free = [&](cudasim::Device& d, const char* what) {
    d.pool().trim();
    if (d.used_global_bytes() != 0) {
      std::fprintf(stderr, "fused_smoke FAILED: %s leaks %zu bytes\n", what,
                   d.used_global_bytes());
      ++violations;
    }
  };
  expect_leak_free(fused_grid_dev, "fused-grid device");
  expect_leak_free(fused_bvh_dev, "fused-bvh device");
  for (auto& d : fleet) expect_leak_free(*d, "fleet device");

  if (violations == 0) {
    std::printf("fused_smoke: all invariants held (labels bit-identical,"
                " no table, fused-BVH %.2fx faster than streaming-grid"
                " modeled)\n",
                stream_t.modeled_total_seconds /
                    std::max(1e-12, fb_t.modeled_total_seconds));
  }
  return violations == 0 ? 0 : 1;
}

/// approx-smoke: the quality-knob gate. On a well-separated scenario the
/// approximate modes must agree with exact DBSCAN (rand index >= 0.99),
/// subsampled labels must be bit-identical across runs for a fixed seed,
/// the cell graph must materialize no table and test far fewer pairs than
/// the exact build, and cellgraph + fused must be rejected.
int cmd_approx_smoke(int argc, char** argv) {
  const std::size_t n =
      argc >= 3 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8000;
  const float eps = 0.5f;
  const int minpts = 8;

  // Well-separated by construction: six dense 2x2-unit clusters on a
  // 20-unit pitch. Any correct clustering recovers exactly this 6-way
  // partition, so the rand-index gate is sharp rather than statistical.
  std::vector<Point2> points;
  points.reserve(n);
  std::uint64_t s = 0xdecafbadu;
  const auto jitter = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return 2.0f * static_cast<float>((s >> 33) & 0xffff) / 65536.0f;
  };
  const float cx[6] = {5.0f, 25.0f, 45.0f, 5.0f, 25.0f, 45.0f};
  const float cy[6] = {5.0f, 5.0f, 5.0f, 25.0f, 25.0f, 25.0f};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % 6;
    points.push_back({cx[c] + jitter(), cy[c] + jitter()});
  }

  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;

  HybridTimings exact_t;
  cudasim::Device exact_dev({}, opt);
  const ClusterResult exact =
      hybrid_dbscan(exact_dev, points, eps, minpts, &exact_t);

  BatchPolicy sub_policy;
  sub_policy.quality = {ClusterQuality::kSubsampled, 0.3f, 1234};
  HybridTimings sub_t;
  cudasim::Device sub_dev({}, opt);
  const ClusterResult sub1 =
      hybrid_dbscan(sub_dev, points, eps, minpts, &sub_t, sub_policy);
  const ClusterResult sub2 =
      hybrid_dbscan(sub_dev, points, eps, minpts, nullptr, sub_policy);

  BatchPolicy cg_policy;
  cg_policy.quality.mode = ClusterQuality::kCellGraph;
  HybridTimings cg_t;
  cudasim::Device cg_dev({}, opt);
  const ClusterResult cg =
      hybrid_dbscan(cg_dev, points, eps, minpts, &cg_t, cg_policy);
  CellGraphReport cg_report;
  const ClusterResult cg_direct =
      cell_graph_dbscan(points, eps, minpts, cg_dev.config(), &cg_report);

  const double sub_ri = rand_index(sub1.labels, exact.labels);
  const double cg_ri = rand_index(cg.labels, exact.labels);
  std::printf(
      "approx_smoke: n=%zu exact modeled=%.6fs subsampled(0.3) modeled=%.6fs"
      " cellgraph modeled=%.6fs\n",
      points.size(), exact_t.modeled_total_seconds,
      sub_t.modeled_total_seconds, cg_t.modeled_total_seconds);
  std::printf(
      "approx_smoke: rand index subsampled=%.6f cellgraph=%.6f;"
      " cell graph ran %llu distance tests vs %llu exact pairs\n",
      sub_ri, cg_ri,
      static_cast<unsigned long long>(cg_report.distance_tests),
      static_cast<unsigned long long>(exact_t.build_report.total_pairs));

  int violations = 0;
  if (sub1.labels != sub2.labels) {
    std::fprintf(stderr,
                 "approx_smoke FAILED: subsampled labels differ across two"
                 " runs with the same seed\n");
    ++violations;
  }
  if (sub_ri < 0.99) {
    std::fprintf(stderr,
                 "approx_smoke FAILED: subsampled rand index %.6f < 0.99 on"
                 " the separated scenario\n",
                 sub_ri);
    ++violations;
  }
  if (cg_ri < 0.99) {
    std::fprintf(stderr,
                 "approx_smoke FAILED: cellgraph rand index %.6f < 0.99 on"
                 " the separated scenario\n",
                 cg_ri);
    ++violations;
  }
  if (cg.labels != cg_direct.labels) {
    std::fprintf(stderr,
                 "approx_smoke FAILED: hybrid_dbscan cellgraph routing"
                 " diverges from cell_graph_dbscan\n");
    ++violations;
  }
  if (cg_t.build_report.table_materialized) {
    std::fprintf(stderr,
                 "approx_smoke FAILED: the cell-graph run materialized a"
                 " neighbor table\n");
    ++violations;
  }
  if (cg_report.distance_tests >= exact_t.build_report.total_pairs) {
    std::fprintf(stderr,
                 "approx_smoke FAILED: cell graph tested %llu pairs, not"
                 " under the exact build's %llu\n",
                 static_cast<unsigned long long>(cg_report.distance_tests),
                 static_cast<unsigned long long>(
                     exact_t.build_report.total_pairs));
    ++violations;
  }
  bool threw = false;
  try {
    (void)hybrid_dbscan(cg_dev, points, eps, minpts, nullptr, cg_policy,
                        ClusterMode::kFused);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  if (!threw) {
    std::fprintf(stderr,
                 "approx_smoke FAILED: cellgraph + fused was not rejected\n");
    ++violations;
  }

  if (violations == 0) {
    std::printf(
        "approx_smoke: all invariants held (seed-deterministic labels, rand"
        " index >= 0.99 both modes, no table, cellgraph %.1fx fewer"
        " distance tests)\n",
        static_cast<double>(exact_t.build_report.total_pairs) /
            std::max<double>(1.0,
                             static_cast<double>(cg_report.distance_tests)));
  }
  return violations == 0 ? 0 : 1;
}

int cmd_profile(int argc, char** argv, const ObsOptions& obs_opts) {
  if (argc < 5) return usage();
  const std::string kind = argv[2];
  const auto n = static_cast<std::size_t>(std::atoll(argv[3]));
  const int num_variants = std::max(1, std::atoi(argv[4]));
  bool selftest = false;
  bool with_faults = false;
  std::uint64_t fault_seed = 0;
  for (int i = 5; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") {
      selftest = true;
    } else if (arg.rfind("--faults=", 0) == 0) {
      with_faults = true;
      fault_seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 9));
    } else {
      return usage();
    }
  }

  const std::vector<Point2> points =
      kind == "uniform" ? data::generate_uniform(n, 1, 35.0f, 35.0f)
                        : data::make_dataset(kind, n);

  // Figure-4-style variant set: an eps sweep at fixed minpts, clustered
  // through the pipelined producer/consumer path.
  std::vector<Variant> variants;
  variants.reserve(static_cast<std::size_t>(num_variants));
  for (int i = 0; i < num_variants; ++i) {
    variants.push_back({0.4f + 0.1f * static_cast<float>(i), 4});
  }

  cudasim::SimulationOptions sim;
  if (with_faults) {
    // Deterministic transient plan: launches 3 and 9 fail once each, which
    // the default retry ladder (max_transient_retries = 2) absorbs, so the
    // run succeeds while fault instants land in the trace.
    cudasim::FaultPlan plan;
    plan.seed = fault_seed;
    plan.transient_launches = {3, 9};
    sim.fault = std::make_shared<cudasim::FaultInjector>(plan);
  }
  cudasim::Device device(cudasim::DeviceConfig{}, sim);

  // Profiling is pointless without the tracer: always on here, regardless
  // of --trace-out (which only adds the file export).
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) tracer.enable();
  obs::set_thread_track(obs::kHostPid, "main");

  PipelineOptions options;
  options.pipelined = true;
  const PipelineReport report =
      run_multi_clustering(device, points, variants, options);
  publish_device_metrics(device.id(), device.metrics());

  std::printf("%zu points, %d variants (eps %.2f..%.2f, minpts 4),"
              " pipelined: %.3f s\n",
              points.size(), num_variants, variants.front().eps,
              variants.back().eps, report.total_seconds);

  const std::vector<obs::TraceEvent> events = tracer.snapshot();
  const obs::TraceProfile profile = obs::profile_trace(events);
  std::printf("%-12s %8s %12s %14s\n", "phase", "spans", "busy (s)",
              "modeled (s)");
  for (const obs::PhaseStat& p : profile.phases) {
    std::printf("%-12s %8zu %12.4f %14.4f\n", p.category.c_str(), p.spans,
                p.busy_seconds, p.modeled_seconds);
  }
  std::printf("overlap ratio: %.2f (busy %.3f s / coverage %.3f s over"
              " %.3f s wall)\n",
              profile.overlap_ratio, profile.busy_seconds,
              profile.coverage_seconds, profile.wall_span_seconds);
  if (tracer.dropped() > 0) {
    std::printf("note: %llu events dropped (ring overflow; raise the"
                " per-thread capacity)\n",
                static_cast<unsigned long long>(tracer.dropped()));
  }

  // profile owns its exports (main skips the generic writer for this
  // subcommand): selftest has to re-read the file after it is written.
  const std::string trace_path = !obs_opts.trace_out.empty()
                                     ? obs_opts.trace_out
                                     : std::string("hdbscan_profile.json");
  std::string err;
  if (!obs::write_chrome_trace(trace_path, &err)) {
    std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("trace written to %s\n", trace_path.c_str());
  if (!obs_opts.metrics_out.empty()) {
    if (!obs::write_metrics_json(obs_opts.metrics_out, &err)) {
      std::fprintf(stderr, "metrics export failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", obs_opts.metrics_out.c_str());
  }

  if (selftest) {
    if (!obs::kTraceCompiled) {
      std::printf("selftest skipped: tracing compiled out"
                  " (HDBSCAN_TRACE_DISABLED)\n");
      return 0;
    }
    const obs::TraceValidation v = obs::validate_trace_file(trace_path);
    int failures = 0;
    auto check = [&](bool ok, const char* what) {
      if (!ok) {
        std::fprintf(stderr, "selftest FAILED: %s\n", what);
        ++failures;
      }
    };
    check(v.ok, v.ok ? "" : v.error.c_str());
    check(v.complete_spans > 0, "no complete spans");
    check(!v.device_pids.empty(), "no device processes in trace");
    check(v.device_span_tracks >= v.device_pids.size(),
          "a device process has no span-carrying track");
    check(v.modeled_span_events > 0, "no modeled-time mirror spans");
    check(v.host_spans >= 1, "no host spans");
    if (with_faults) check(v.has_fault_instant, "no fault instants");
    if (failures != 0) return 1;
    std::printf("selftest passed: %zu events (%zu spans, %zu instants),"
                " %zu device processes, %zu modeled spans\n",
                v.events, v.complete_spans, v.instants,
                v.device_pids.size(), v.modeled_span_events);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Service front-end: serve / replay / serve-smoke / overload-smoke
// ---------------------------------------------------------------------------

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

/// Shared serve/replay flags, parsed (and stripped) from argv.
struct ServeFlags {
  service::ServiceOptions options;
  std::uint64_t seed = 42;
  float eps_ref = 0.9f;

  static ServeFlags parse(int& argc, char** argv) {
    ServeFlags f;
    f.options.cache_bytes_budget = 256ull << 20;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--no-cache") {
        f.options.cache_bytes_budget = 0;
      } else if (arg == "--no-coalesce") {
        f.options.coalesce = false;
      } else if (arg.rfind("--workers=", 0) == 0) {
        f.options.num_workers =
            static_cast<unsigned>(std::max(1, std::atoi(arg.c_str() + 10)));
      } else if (arg.rfind("--depth=", 0) == 0) {
        f.options.queue_depth_limit =
            static_cast<std::size_t>(std::max(1, std::atoi(arg.c_str() + 8)));
      } else if (arg.rfind("--budget-mb=", 0) == 0) {
        f.options.queue_bytes_budget =
            static_cast<std::uint64_t>(std::atoll(arg.c_str() + 12)) << 20;
      } else if (arg.rfind("--seed=", 0) == 0) {
        f.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
      } else if (arg.rfind("--eps-ref=", 0) == 0) {
        f.eps_ref = std::strtof(arg.c_str() + 10, nullptr);
      } else if (arg.rfind("--slo-p99=", 0) == 0) {
        f.options.slo_p99_target_seconds =
            std::strtod(arg.c_str() + 10, nullptr);
      } else {
        argv[w++] = argv[i];
        continue;
      }
    }
    argc = w;
    return f;
  }
};

void print_service_summary(const service::ClusterService& svc,
                           const std::vector<service::JobSpec>& jobs,
                           const std::vector<service::JobResult>& results) {
  const service::ServiceStats s = svc.stats();
  std::printf(
      "served %llu jobs: %llu completed, %llu rejected, %llu shed,"
      " %llu cancelled, %llu deadline-exceeded, %llu failed\n",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.failed));
  std::printf(
      "cache: %llu hits, %llu misses, %llu evictions | coalesced: %llu jobs"
      " across %llu shared builds | retries %llu, breaker opens %llu, host"
      " fallback jobs %llu\n",
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      static_cast<unsigned long long>(s.cache_evictions),
      static_cast<unsigned long long>(s.coalesced_jobs),
      static_cast<unsigned long long>(s.coalesced_builds),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.breaker_opens),
      static_cast<unsigned long long>(s.host_fallback_jobs));
  std::vector<double> latencies;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].state == service::JobState::kCompleted) {
      latencies.push_back(
          results[i].modeled_latency_seconds(jobs[i].arrival_seconds));
    }
  }
  if (!latencies.empty()) {
    std::printf(
        "modeled latency: p50 %.4fs, p99 %.4fs | modeled makespan %.4fs |"
        " throughput %.1f jobs/s\n",
        percentile(latencies, 0.5), percentile(latencies, 0.99),
        s.modeled_makespan_seconds,
        s.modeled_makespan_seconds > 0.0
            ? static_cast<double>(s.completed) / s.modeled_makespan_seconds
            : 0.0);
  }

  // Per-tenant SLO report: wall-latency quantiles from the registry
  // histograms plus the outcome mix, one row per tenant.
  const std::vector<service::TenantSlo> slo = svc.slo_report();
  if (!slo.empty()) {
    std::printf("%-12s %6s %6s %5s %5s %6s %8s %8s %6s %6s %s\n", "tenant",
                "submit", "done", "rej", "shed", "fail", "p50(s)", "p99(s)",
                "err%", "shed%", "slo");
    for (const service::TenantSlo& row : slo) {
      std::printf(
          "%-12s %6llu %6llu %5llu %5llu %6llu %8.4f %8.4f %5.1f%% %5.1f%%"
          " %s\n",
          row.tenant.c_str(), static_cast<unsigned long long>(row.submitted),
          static_cast<unsigned long long>(row.completed),
          static_cast<unsigned long long>(row.rejected),
          static_cast<unsigned long long>(row.shed),
          static_cast<unsigned long long>(row.failed), row.p50_seconds,
          row.p99_seconds, 100.0 * row.error_fraction(),
          100.0 * row.shed_fraction(),
          row.target_p99_seconds <= 0.0 ? "-"
          : row.target_met              ? "met"
                                        : "MISSED");
    }
  }
}

std::vector<std::unique_ptr<cudasim::Device>> make_clean_devices(unsigned k) {
  cudasim::SimulationOptions sim;
  sim.throttle_transfers = false;
  sim.throttle_pinned_alloc = false;
  std::vector<std::unique_ptr<cudasim::Device>> devices;
  for (unsigned d = 0; d < k; ++d) {
    devices.push_back(
        std::make_unique<cudasim::Device>(cudasim::DeviceConfig{}, sim));
  }
  return devices;
}

int cmd_serve(int argc, char** argv) {
  ServeFlags flags = ServeFlags::parse(argc, argv);
  if (argc < 5) return usage();
  const std::string kind = argv[2];
  const auto n = static_cast<std::size_t>(std::atoll(argv[3]));
  const auto num_jobs = static_cast<unsigned>(std::max(1, std::atoi(argv[4])));
  const unsigned num_devices =
      argc > 5 ? static_cast<unsigned>(std::max(1, std::atoi(argv[5]))) : 2u;

  std::vector<Point2> points =
      kind == "uniform" ? data::generate_uniform(n, flags.seed, 35.0f, 35.0f)
                        : data::make_dataset(kind, n);

  auto devices = make_clean_devices(num_devices);
  std::vector<cudasim::Device*> device_ptrs;
  for (auto& d : devices) device_ptrs.push_back(d.get());

  service::WorkloadSpec wl;
  wl.num_jobs = num_jobs;
  wl.seed = flags.seed;
  wl.abandoned_fraction = 0.05;
  wl.deadline_fraction = 0.1;
  const std::vector<service::JobSpec> jobs = service::make_zipf_workload(wl);

  service::ClusterService svc(device_ptrs, flags.options);
  svc.register_dataset("default", std::move(points), flags.eps_ref);
  const std::vector<service::JobResult> results = svc.replay(jobs);
  print_service_summary(svc, jobs, results);
  return 0;
}

int cmd_replay(int argc, char** argv) {
  ServeFlags flags = ServeFlags::parse(argc, argv);
  if (argc < 4) return usage();
  const std::vector<service::JobSpec> jobs = service::load_jobs_file(argv[2]);

  auto devices = make_clean_devices(2);
  std::vector<cudasim::Device*> device_ptrs;
  for (auto& d : devices) device_ptrs.push_back(d.get());

  service::ClusterService svc(device_ptrs, flags.options);
  for (int i = 3; i < argc; ++i) {
    const std::string binding = argv[i];
    const auto eq = binding.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "replay: expected <name>=<points_file>, got %s\n",
                   binding.c_str());
      return 2;
    }
    svc.register_dataset(binding.substr(0, eq),
                         load_points(binding.substr(eq + 1)), flags.eps_ref);
  }
  const std::vector<service::JobResult> results = svc.replay(jobs);
  print_service_summary(svc, jobs, results);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const service::JobResult& r = results[i];
    std::printf("job %zu [%s %s eps=%.3g minpts=%d]: %s%s%s%s\n", i,
                jobs[i].tenant.c_str(), jobs[i].dataset.c_str(),
                static_cast<double>(jobs[i].eps), jobs[i].minpts,
                service::job_state_name(r.state),
                r.cache_hit ? " (cache hit)" : "",
                r.coalesced ? " (coalesced)" : "",
                r.reject_reason.empty() ? ""
                                        : (": " + r.reject_reason).c_str());
  }
  return 0;
}

/// serve_smoke CTest target: a Zipf multi-tenant workload on clean
/// devices with cache + coalescing on. Exits nonzero unless every job is
/// terminal, reuse actually happened, every same-(eps, minpts) label
/// vector is bit-identical (the cache-hit == fresh-build invariant), and
/// the devices end leak-free.
int cmd_serve_smoke(int argc, char** argv) {
  const std::size_t n =
      argc >= 3 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4000;
  const std::vector<Point2> points =
      data::generate_uniform(n, 7, 35.0f, 35.0f);

  auto devices = make_clean_devices(2);
  std::vector<cudasim::Device*> device_ptrs;
  for (auto& d : devices) device_ptrs.push_back(d.get());

  service::ServiceOptions opt;
  opt.num_workers = 3;
  opt.cache_bytes_budget = 256ull << 20;
  opt.keep_labels = true;
  service::WorkloadSpec wl;
  wl.num_jobs = 24;
  wl.abandoned_fraction = 0.1;
  wl.deadline_fraction = 0.15;
  wl.seed = 99;
  const std::vector<service::JobSpec> jobs = service::make_zipf_workload(wl);

  service::ClusterService svc(device_ptrs, opt);
  svc.register_dataset("default", points, 0.9f);
  const std::vector<service::JobResult> results = svc.replay(jobs);
  print_service_summary(svc, jobs, results);

  int violations = 0;
  const service::ServiceStats s = svc.stats();
  if (results.size() != jobs.size()) {
    std::fprintf(stderr, "SMOKE FAIL: %zu results for %zu jobs\n",
                 results.size(), jobs.size());
    ++violations;
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!service::is_terminal(results[i].state)) {
      std::fprintf(stderr, "SMOKE FAIL: job %zu not terminal (%s)\n", i,
                   service::job_state_name(results[i].state));
      ++violations;
    }
  }
  if (s.terminal_total() != s.submitted) {
    std::fprintf(stderr,
                 "SMOKE FAIL: %llu terminal outcomes for %llu submitted\n",
                 static_cast<unsigned long long>(s.terminal_total()),
                 static_cast<unsigned long long>(s.submitted));
    ++violations;
  }
  if (s.cache_hits + s.coalesced_jobs == 0) {
    std::fprintf(stderr,
                 "SMOKE FAIL: a 24-job Zipf workload over 4 eps values"
                 " produced no reuse at all\n");
    ++violations;
  }
  // Bit-identity: all completed jobs with the same (eps, minpts) must
  // carry byte-identical label vectors, however they were served (fresh
  // build, coalesced member, cache hit).
  std::map<std::pair<float, int>, const std::vector<std::int32_t>*> canon;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].state != service::JobState::kCompleted) continue;
    const auto key = std::make_pair(jobs[i].eps, jobs[i].minpts);
    const auto it = canon.find(key);
    if (it == canon.end()) {
      canon.emplace(key, &results[i].labels);
    } else if (*it->second != results[i].labels) {
      std::fprintf(stderr,
                   "SMOKE FAIL: labels for eps=%.3g minpts=%d diverge"
                   " between servings of the same request\n",
                   static_cast<double>(jobs[i].eps), jobs[i].minpts);
      ++violations;
    }
  }
  for (unsigned d = 0; d < devices.size(); ++d) {
    devices[d]->pool().trim();
    if (devices[d]->used_global_bytes() != 0) {
      std::fprintf(stderr, "SMOKE FAIL: device %u leaks %zu bytes\n", d,
                   devices[d]->used_global_bytes());
      ++violations;
    }
  }
  if (violations != 0) return 1;
  std::printf("serve-smoke: all invariants held (%zu jobs, cache %llu hits,"
              " %llu coalesced)\n",
              jobs.size(), static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.coalesced_jobs));
  return 0;
}

/// overload_smoke CTest target: 4x the admission byte budget plus one
/// device scripted to die mid-serve. Exits nonzero unless the service
/// drains without deadlock, every job lands in exactly one terminal
/// state, rejected/shed/abandoned jobs consumed zero device time, a
/// wall-deadline job cancelled mid-build returned its pooled buffers, and
/// the surviving device ends leak-free.
int cmd_overload_smoke(int argc, char** argv) {
  const std::size_t n =
      argc >= 3 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4000;
  const std::vector<Point2> points =
      data::generate_uniform(n, 11, 35.0f, 35.0f);

  cudasim::SimulationOptions sim;
  sim.throttle_transfers = false;
  sim.throttle_pinned_alloc = false;
  std::vector<std::unique_ptr<cudasim::Device>> devices;
  devices.push_back(
      std::make_unique<cudasim::Device>(cudasim::DeviceConfig{}, sim));
  {
    // Device 1 dies mid-serve: after 25 global ops it refuses everything,
    // so the first build dispatched to it dies mid-flight and must be
    // re-dispatched (retry budget) while the breaker opens.
    cudasim::FaultPlan plan;
    plan.lost_at_op = 25;
    cudasim::SimulationOptions faulty = sim;
    faulty.fault = std::make_shared<cudasim::FaultInjector>(plan);
    devices.push_back(
        std::make_unique<cudasim::Device>(cudasim::DeviceConfig{}, faulty));
  }
  std::vector<cudasim::Device*> device_ptrs;
  for (auto& d : devices) device_ptrs.push_back(d.get());

  service::WorkloadSpec wl;
  wl.num_jobs = 48;
  wl.abandoned_fraction = 0.15;
  wl.seed = 1234;
  std::vector<service::JobSpec> jobs = service::make_zipf_workload(wl);
  // One guaranteed-singleton job (unique eps) with an already-expired
  // wall deadline: its build must be cancelled cooperatively at dispatch
  // and release every pooled buffer it touched.
  jobs[5].eps = 1.1f;
  jobs[5].wall_deadline_seconds = 1e-9;
  jobs[5].abandoned = false;
  // Top class: admission may reject it outright but never sheds it once
  // queued, so it deterministically reaches dispatch.
  jobs[5].priority = service::Priority::kInteractive;
  // One guaranteed client hang-up that survives admission: must end
  // cancelled, with zero device time billed.
  jobs[7].abandoned = true;
  jobs[7].priority = service::Priority::kInteractive;

  service::ServiceOptions opt;
  opt.num_workers = 3;
  opt.cache_bytes_budget = 64ull << 20;
  opt.queue_depth_limit = 256;

  // Price the workload, then admit only a quarter of it: a 4x overload.
  std::uint64_t total_priced = 0;
  {
    service::ClusterService pricer({device_ptrs[0]}, opt);
    pricer.register_dataset("default", points, 0.9f);
    for (const service::JobSpec& j : jobs) {
      total_priced += pricer.price("default", j.eps).second;
    }
  }
  opt.queue_bytes_budget = std::max<std::uint64_t>(1, total_priced / 4);

  service::ClusterService svc(device_ptrs, opt);
  svc.register_dataset("default", points, 0.9f);
  const std::vector<service::JobResult> results = svc.replay(jobs);
  print_service_summary(svc, jobs, results);

  int violations = 0;
  const service::ServiceStats s = svc.stats();
  if (s.terminal_total() != s.submitted ||
      results.size() != jobs.size()) {
    std::fprintf(stderr,
                 "SMOKE FAIL: %llu terminal outcomes for %llu submitted\n",
                 static_cast<unsigned long long>(s.terminal_total()),
                 static_cast<unsigned long long>(s.submitted));
    ++violations;
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const service::JobResult& r = results[i];
    if (!service::is_terminal(r.state)) {
      std::fprintf(stderr, "SMOKE FAIL: job %zu not terminal (%s)\n", i,
                   service::job_state_name(r.state));
      ++violations;
    }
    const bool never_ran = r.state == service::JobState::kRejected ||
                           r.state == service::JobState::kShed ||
                           r.state == service::JobState::kCancelled;
    if (never_ran &&
        (r.modeled_device_seconds != 0.0 || r.device_id != -1)) {
      std::fprintf(stderr,
                   "SMOKE FAIL: %s job %zu consumed device time\n",
                   service::job_state_name(r.state), i);
      ++violations;
    }
  }
  if (s.rejected + s.shed == 0) {
    std::fprintf(stderr,
                 "SMOKE FAIL: a 4x-overloaded queue rejected nothing\n");
    ++violations;
  }
  if (results[5].state != service::JobState::kDeadlineExceeded) {
    std::fprintf(stderr,
                 "SMOKE FAIL: expired wall-deadline job ended %s, expected"
                 " deadline-exceeded\n",
                 service::job_state_name(results[5].state));
    ++violations;
  }
  if (results[7].state != service::JobState::kCancelled) {
    std::fprintf(stderr,
                 "SMOKE FAIL: abandoned job ended %s, expected cancelled\n",
                 service::job_state_name(results[7].state));
    ++violations;
  }
  // The scripted device death must be visible as resilience activity:
  // either a whole-build re-dispatch or an opened breaker.
  if (s.retries + s.breaker_opens == 0) {
    std::fprintf(stderr,
                 "SMOKE FAIL: device died mid-serve but no retry or"
                 " breaker open was recorded\n");
    ++violations;
  }
  // Buffer-accounting balance: whatever mix of completions, failovers,
  // and cancellations ran, no live device may hold builder memory.
  for (unsigned d = 0; d < devices.size(); ++d) {
    if (devices[d]->lost()) continue;
    devices[d]->pool().trim();
    if (devices[d]->used_global_bytes() != 0) {
      std::fprintf(stderr, "SMOKE FAIL: device %u leaks %zu bytes\n", d,
                   devices[d]->used_global_bytes());
      ++violations;
    }
  }
  if (violations != 0) return 1;
  std::printf(
      "overload-smoke: all invariants held (%llu rejected+shed, %llu"
      " cancelled, %llu deadline-exceeded, %llu retries, breaker opened"
      " %llu times)\n",
      static_cast<unsigned long long>(s.rejected + s.shed),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.breaker_opens));
  return 0;
}

// ---------------------------------------------------------------------------
// Latency attribution: explain / explain-smoke
// ---------------------------------------------------------------------------

void print_request_analysis(const obs::RequestAnalysis& analysis,
                            std::size_t top_k) {
  std::printf(
      "%zu requests attributed (%zu spans without a request id), wall p50"
      " %.4fs p99 %.4fs",
      analysis.requests.size(), analysis.unattributed_spans,
      analysis.p50_seconds, analysis.p99_seconds);
  if (!analysis.p99_dominant_stage.empty()) {
    std::printf(" — the tail is dominated by the '%s' stage",
                analysis.p99_dominant_stage.c_str());
  }
  std::printf("\n");
  const std::size_t shown = std::min(top_k, analysis.requests.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const obs::RequestProfile& r = analysis.requests[i];
    std::printf("#%zu request %llu [%s]: %.4fs wall, %.4fs modeled, %zu"
                " spans",
                i + 1, static_cast<unsigned long long>(r.request_id),
                r.tenant.empty() ? "?" : r.tenant.c_str(), r.latency_seconds,
                r.modeled_seconds, r.span_count);
    if (!r.linked_to.empty()) {
      std::printf(", served by request");
      for (const std::uint64_t l : r.linked_to) {
        std::printf(" %llu", static_cast<unsigned long long>(l));
      }
    }
    std::printf("\n");
    for (const obs::StageAttribution& st : r.stages) {
      std::printf("    stage %-12s %9.4fs wall", st.name.c_str(),
                  st.wall_seconds);
      if (st.modeled_seconds > 0.0) {
        std::printf("  %9.4fs modeled", st.modeled_seconds);
      }
      std::printf("\n");
    }
    for (std::size_t c = 0; c < r.categories.size() && c < 4; ++c) {
      const obs::StageAttribution& cat = r.categories[c];
      std::printf("    in %-15s %9.4fs wall across %zu spans\n",
                  cat.name.c_str(), cat.wall_seconds, cat.spans);
    }
  }
}

/// `explain <trace.json> [--top=K]`: re-loads a request-attributed trace
/// file and prints the top-k slowest requests with per-stage latency
/// attribution — "why was this request slow".
int cmd_explain(int argc, char** argv) {
  if (argc < 3) return usage();
  std::size_t top_k = 5;
  std::string path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--top=", 0) == 0) {
      top_k = static_cast<std::size_t>(std::max(1, std::atoi(arg.c_str() + 6)));
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage();
  std::vector<obs::TraceEvent> events;
  std::string err;
  if (!obs::read_trace_file(path, &events, &err)) {
    std::fprintf(stderr, "explain: cannot load %s: %s\n", path.c_str(),
                 err.c_str());
    return 1;
  }
  const obs::RequestAnalysis analysis = obs::analyze_request_trace(events);
  if (analysis.requests.empty()) {
    std::fprintf(stderr,
                 "explain: %s holds no request-attributed spans (was the"
                 " trace taken from a serve/replay run?)\n",
                 path.c_str());
    return 1;
  }
  print_request_analysis(analysis, top_k);
  return 0;
}

/// explain_smoke CTest target: a traced multi-tenant replay with one
/// device scripted to die mid-serve, post-mortem dumping armed. Exits
/// nonzero unless (1) every span in the written trace carries a request
/// id, (2) reuse produced span links, (3) the analyzer attributes every
/// completed request's latency to stages, and (4) the device death left a
/// post-mortem file on disk.
int cmd_explain_smoke(int argc, char** argv) {
  const std::size_t n =
      argc >= 3 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4000;
  const std::vector<Point2> points =
      data::generate_uniform(n, 7, 35.0f, 35.0f);

  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) tracer.enable();
  obs::set_thread_track(obs::kHostPid, "explain_smoke");

  const std::string pm_dir = "explain_smoke_postmortem";
  std::error_code ec;
  std::filesystem::create_directories(pm_dir, ec);
  obs::FlightRecorder& frec = obs::FlightRecorder::global();
  frec.reset();
  frec.arm(pm_dir);

  cudasim::SimulationOptions sim;
  sim.throttle_transfers = false;
  sim.throttle_pinned_alloc = false;
  std::vector<std::unique_ptr<cudasim::Device>> devices;
  devices.push_back(
      std::make_unique<cudasim::Device>(cudasim::DeviceConfig{}, sim));
  {
    // The second device dies mid-serve — the flight recorder must catch
    // it and dump a post-mortem.
    cudasim::FaultPlan plan;
    plan.lost_at_op = 25;
    cudasim::SimulationOptions faulty = sim;
    faulty.fault = std::make_shared<cudasim::FaultInjector>(plan);
    devices.push_back(
        std::make_unique<cudasim::Device>(cudasim::DeviceConfig{}, faulty));
  }
  std::vector<cudasim::Device*> device_ptrs;
  for (auto& d : devices) device_ptrs.push_back(d.get());

  service::ServiceOptions opt;
  opt.num_workers = 3;
  opt.cache_bytes_budget = 64ull << 20;
  opt.slo_p99_target_seconds = 60.0;
  service::WorkloadSpec wl;
  wl.num_jobs = 24;
  wl.seed = 99;
  const std::vector<service::JobSpec> jobs = service::make_zipf_workload(wl);

  service::ClusterService svc(device_ptrs, opt);
  svc.register_dataset("default", points, 0.9f);
  const std::vector<service::JobResult> results = svc.replay(jobs);
  print_service_summary(svc, jobs, results);

  const std::string trace_path = "explain_smoke_trace.json";
  std::string err;
  if (!obs::write_chrome_trace(trace_path, &err)) {
    std::fprintf(stderr, "explain-smoke FAILED: trace export: %s\n",
                 err.c_str());
    return 1;
  }

  int violations = 0;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "explain-smoke FAILED: %s\n", what);
      ++violations;
    }
  };

  // (1) Full request attribution in the written trace.
  const obs::TraceValidation v = obs::validate_trace_file(trace_path);
  check(v.ok, v.ok ? "" : v.error.c_str());
  check(v.spans_with_request > 0, "no request-attributed spans");
  check(v.spans_without_request == 0,
        "spans without a request id (attribution gap)");
  check(v.link_events > 0,
        "no span links (coalesced jobs / cache hits should link)");
  const service::ServiceStats s = svc.stats();
  check(v.distinct_request_ids >= s.submitted,
        "fewer distinct request ids than submitted jobs");

  // (2) Every terminal job carries its request id and a stage breakdown
  // whose wall sum is its latency ledger.
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].request_id == 0) {
      std::fprintf(stderr,
                   "explain-smoke FAILED: job %zu has no request id\n", i);
      ++violations;
      break;
    }
    if (results[i].state == service::JobState::kCompleted &&
        !(results[i].stages.total_wall_seconds() > 0.0)) {
      std::fprintf(stderr,
                   "explain-smoke FAILED: completed job %zu has an empty"
                   " stage breakdown\n",
                   i);
      ++violations;
      break;
    }
  }

  // (3) The analyzer round-trips the file into per-stage attribution.
  std::vector<obs::TraceEvent> events;
  check(obs::read_trace_file(trace_path, &events, &err),
        "re-reading the trace file failed");
  const obs::RequestAnalysis analysis = obs::analyze_request_trace(events);
  check(!analysis.requests.empty(), "analyzer found no requests");
  check(analysis.unattributed_spans == 0,
        "analyzer saw unattributed spans");
  if (!analysis.requests.empty()) {
    const obs::RequestProfile& slowest = analysis.requests.front();
    check(!slowest.stages.empty(),
          "slowest request has no stage attribution");
    check(!slowest.dominant_stage.empty(),
          "slowest request has no dominant stage");
    check(analysis.p99_seconds >= analysis.p50_seconds, "p99 < p50");
    print_request_analysis(analysis, 3);
  }

  // (4) The scripted device death produced a post-mortem file.
  check(frec.triggers() > 0, "no flight-recorder triggers fired");
  check(frec.dumps() > 0, "no post-mortem was dumped");
  bool postmortem_on_disk = false;
  for (const std::string& p : frec.dump_paths()) {
    if (std::filesystem::exists(p)) postmortem_on_disk = true;
  }
  check(postmortem_on_disk, "post-mortem file missing on disk");

  // (5) The SLO report covers every tenant that submitted.
  const std::vector<service::TenantSlo> slo = svc.slo_report();
  check(!slo.empty(), "empty SLO report");
  std::uint64_t slo_submitted = 0;
  for (const service::TenantSlo& row : slo) slo_submitted += row.submitted;
  check(slo_submitted == s.submitted,
        "SLO report does not cover every submitted job");

  if (violations != 0) return 1;
  std::printf(
      "explain-smoke: all invariants held (%zu jobs, %zu spans attributed,"
      " %zu links, %llu post-mortem files)\n",
      jobs.size(), v.spans_with_request, v.link_events,
      static_cast<unsigned long long>(frec.dumps()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global observability flags so every subcommand sees its
  // positional arguments unchanged.
  ObsOptions obs_opts;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      obs_opts.trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      obs_opts.metrics_out = arg.substr(14);
    } else if (arg.rfind("--postmortem-dir=", 0) == 0) {
      obs_opts.postmortem_dir = arg.substr(17);
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (!obs_opts.trace_out.empty()) hdbscan::obs::Tracer::global().enable();
  if (!obs_opts.postmortem_dir.empty()) {
    // Arm the always-on flight recorder: any job-failed / breaker-open /
    // device-lost trigger during this run dumps a post-mortem JSON here.
    std::error_code ec;
    std::filesystem::create_directories(obs_opts.postmortem_dir, ec);
    hdbscan::obs::FlightRecorder::global().arm(obs_opts.postmortem_dir);
  }

  int rc = -1;
  try {
    if (cmd == "gen") rc = cmd_gen(argc, argv);
    else if (cmd == "cluster") rc = cmd_cluster(argc, argv);
    else if (cmd == "sweep") rc = cmd_sweep(argc, argv);
    else if (cmd == "reuse") rc = cmd_reuse(argc, argv);
    else if (cmd == "table") rc = cmd_table(argc, argv);
    else if (cmd == "optics") rc = cmd_optics(argc, argv);
    else if (cmd == "chaos") rc = cmd_chaos(argc, argv);
    else if (cmd == "perf-smoke") rc = cmd_perf_smoke(argc, argv);
    else if (cmd == "fused-smoke") rc = cmd_fused_smoke(argc, argv);
    else if (cmd == "approx-smoke") rc = cmd_approx_smoke(argc, argv);
    else if (cmd == "stream-smoke") rc = cmd_stream_smoke(argc, argv);
    else if (cmd == "shard-smoke") rc = cmd_shard_smoke(argc, argv);
    else if (cmd == "serve") rc = cmd_serve(argc, argv);
    else if (cmd == "replay") rc = cmd_replay(argc, argv);
    else if (cmd == "serve-smoke") rc = cmd_serve_smoke(argc, argv);
    else if (cmd == "overload-smoke") rc = cmd_overload_smoke(argc, argv);
    else if (cmd == "explain") rc = cmd_explain(argc, argv);
    else if (cmd == "explain-smoke") rc = cmd_explain_smoke(argc, argv);
    else if (cmd == "profile") return cmd_profile(argc, argv, obs_opts);
    else return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  // Generic exports for every subcommand except profile (which writes and
  // validates its own files before returning). Exported even when the
  // command failed — a trace of a failing run is the useful one.
  std::string err;
  if (!obs_opts.trace_out.empty()) {
    if (hdbscan::obs::write_chrome_trace(obs_opts.trace_out, &err)) {
      std::printf("trace written to %s\n", obs_opts.trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (!obs_opts.metrics_out.empty()) {
    if (hdbscan::obs::write_metrics_json(obs_opts.metrics_out, &err)) {
      std::printf("metrics written to %s\n", obs_opts.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "metrics export failed: %s\n", err.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
