// hdbscan_cli — command-line front end for the whole library.
//
//   hdbscan_cli gen <SW1|SW4|SDSS1|SDSS2|SDSS3|uniform> <n> <out.{csv,bin}>
//   hdbscan_cli cluster <in.{csv,bin}> <eps> <minpts> [labels_out] [--map]
//   hdbscan_cli sweep <in> <eps_lo> <eps_hi> <step> <minpts>
//   hdbscan_cli reuse <in> <eps> <minpts,minpts,...> [threads]
//   hdbscan_cli table <in> <eps> <table_out.bin>
//   hdbscan_cli optics <in> <eps> <minpts> <eps',eps',...>
//   hdbscan_cli chaos <SW1|...|uniform> <n> <seed> [devices]
//
// `chaos` attaches a seeded randomized fault plan to every simulated
// device, runs a resilient multi-device build plus clustering, and exits
// nonzero if any invariant breaks (wrong table, leaked device memory,
// wrong clustering) — the degradation ladder may bend but results may not.
//
// Files ending in .bin use the library's binary point format; anything
// else is parsed as "x,y" CSV.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/cluster_analysis.hpp"
#include "common/timer.hpp"
#include "core/hybrid_dbscan.hpp"
#include "core/pipeline.hpp"
#include "core/reuse.hpp"
#include "cudasim/device.hpp"
#include "cudasim/fault.hpp"
#include "data/datasets.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "dbscan/dbscan.hpp"
#include "dbscan/optics.hpp"
#include "dbscan/table_io.hpp"
#include "index/grid_index.hpp"

namespace {

using namespace hdbscan;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::vector<Point2> load_points(const std::string& path) {
  return ends_with(path, ".bin") ? data::load_binary(path)
                                 : data::load_csv(path);
}

void save_points(const std::string& path, const std::vector<Point2>& points) {
  if (ends_with(path, ".bin")) {
    data::save_binary(path, points);
  } else {
    data::save_csv(path, points);
  }
}

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    out.push_back(std::atoi(csv.c_str() + pos));
    const std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<float> parse_float_list(const std::string& csv) {
  std::vector<float> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    out.push_back(std::strtof(csv.c_str() + pos, nullptr));
    const std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hdbscan_cli gen <SW1|SW4|SDSS1|SDSS2|SDSS3|uniform> <n> <out>\n"
      "  hdbscan_cli cluster <in> <eps> <minpts> [labels_out] [--map]\n"
      "  hdbscan_cli sweep <in> <eps_lo> <eps_hi> <step> <minpts>\n"
      "  hdbscan_cli reuse <in> <eps> <minpts,minpts,...> [threads]\n"
      "  hdbscan_cli table <in> <eps> <table_out.bin>\n"
      "  hdbscan_cli optics <in> <eps> <minpts> <eps',eps',...>\n"
      "  hdbscan_cli chaos <SW1|SW4|SDSS1|SDSS2|SDSS3|uniform> <n> <seed>"
      " [devices]\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string kind = argv[2];
  const auto n = static_cast<std::size_t>(std::atoll(argv[3]));
  std::vector<Point2> points;
  if (kind == "uniform") {
    points = data::generate_uniform(n, 1, 35.0f, 35.0f);
  } else {
    points = data::make_dataset(kind, n);
  }
  save_points(argv[4], points);
  std::printf("wrote %zu points to %s\n", points.size(), argv[4]);
  return 0;
}

int cmd_cluster(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto points = load_points(argv[2]);
  const float eps = std::strtof(argv[3], nullptr);
  const int minpts = std::atoi(argv[4]);
  const bool want_map = argc > 5 && std::string(argv[argc - 1]) == "--map";

  cudasim::Device device;
  HybridTimings timings;
  const ClusterResult result =
      hybrid_dbscan(device, points, eps, minpts, &timings);
  std::printf("%zu points, eps=%g minpts=%d -> %d clusters, %zu noise"
              " (%.3f s, modeled %.3f s)\n",
              points.size(), eps, minpts, result.num_clusters,
              result.noise_count(), timings.total_seconds,
              timings.modeled_total_seconds);

  const auto stats = analysis::compute_cluster_stats(points, result);
  for (std::size_t i = 0; i < stats.size() && i < 10; ++i) {
    std::printf("  cluster %2d: %7zu pts  centroid (%.2f, %.2f)\n",
                stats[i].cluster, stats[i].size, stats[i].centroid.x,
                stats[i].centroid.y);
  }
  if (want_map) {
    std::printf("%s", analysis::ascii_cluster_map(points, result, 72, 24).c_str());
  }
  if (argc > 5 && std::string(argv[5]) != "--map") {
    std::FILE* out = std::fopen(argv[5], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[5]);
      return 1;
    }
    for (const std::int32_t l : result.labels) std::fprintf(out, "%d\n", l);
    std::fclose(out);
    std::printf("labels written to %s\n", argv[5]);
  }
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 7) return usage();
  const auto points = load_points(argv[2]);
  const float lo = std::strtof(argv[3], nullptr);
  const float hi = std::strtof(argv[4], nullptr);
  const float step = std::strtof(argv[5], nullptr);
  const int minpts = std::atoi(argv[6]);
  if (!(step > 0.0f) || hi < lo) {
    std::fprintf(stderr, "bad sweep range\n");
    return 2;
  }
  std::vector<Variant> variants;
  for (float e = lo; e <= hi + 1e-6f; e += step) variants.push_back({e, minpts});

  cudasim::Device device;
  const PipelineReport report =
      run_multi_clustering(device, points, variants, {});
  std::printf("%6s %10s %10s %12s %12s\n", "eps", "clusters", "noise",
              "T (s)", "DBSCAN (s)");
  for (const VariantTiming& t : report.variants) {
    std::printf("%6.3f %10d %10zu %12.3f %12.3f\n", t.variant.eps,
                t.num_clusters, t.noise_count, t.table_seconds,
                t.dbscan_seconds);
  }
  std::printf("pipelined total: %.3f s for %zu variants\n",
              report.total_seconds, variants.size());
  return 0;
}

int cmd_reuse(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto points = load_points(argv[2]);
  const float eps = std::strtof(argv[3], nullptr);
  const std::vector<int> minpts = parse_int_list(argv[4]);
  const unsigned threads =
      argc > 5 ? static_cast<unsigned>(std::atoi(argv[5])) : 4u;
  if (minpts.empty()) return usage();

  cudasim::Device device;
  std::vector<ClusterResult> results;
  const ReuseReport report =
      cluster_minpts_sweep(device, points, eps, minpts, threads, {}, &results);
  std::printf("T built once (%.3f s); %zu minpts variants on %u threads"
              " (%.3f s):\n",
              report.table_seconds, minpts.size(), threads,
              report.dbscan_wall_seconds);
  for (std::size_t i = 0; i < minpts.size(); ++i) {
    std::printf("  minpts %5d -> %6d clusters, %8zu noise\n", minpts[i],
                results[i].num_clusters, results[i].noise_count());
  }
  return 0;
}

int cmd_table(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto points = load_points(argv[2]);
  const float eps = std::strtof(argv[3], nullptr);
  cudasim::Device device;
  const GridIndex index = build_grid_index(points, eps);
  NeighborTableBuilder builder(device);
  BuildReport report;
  const NeighborTable table = builder.build(index, eps, &report);
  save_neighbor_table(argv[4], table, eps);
  std::printf("neighbor table: %llu pairs in %u batches (%.3f s) -> %s\n",
              static_cast<unsigned long long>(report.total_pairs),
              report.batches_run, report.table_seconds, argv[4]);
  std::printf("note: the table indexes the grid ordering; pair it with the"
              " same eps when loading.\n");
  return 0;
}

int cmd_optics(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto points = load_points(argv[2]);
  const float eps = std::strtof(argv[3], nullptr);
  const int minpts = std::atoi(argv[4]);
  const std::vector<float> eps_primes = parse_float_list(argv[5]);

  cudasim::Device device;
  const GridIndex index = build_grid_index(points, eps);
  NeighborTableBuilder builder(device);
  const NeighborTable table = builder.build(index, eps);
  const OpticsResult ordering = optics(index.points, table, eps, minpts);
  std::printf("%8s %10s %10s\n", "eps'", "clusters", "noise");
  for (const float ep : eps_primes) {
    if (ep > eps) {
      std::printf("%8.3f   (skipped: exceeds table eps %g)\n", ep, eps);
      continue;
    }
    const ClusterResult r = extract_dbscan_clustering(ordering, ep);
    std::printf("%8.3f %10d %10zu\n", ep, r.num_clusters, r.noise_count());
  }
  return 0;
}

int cmd_chaos(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string kind = argv[2];
  const auto n = static_cast<std::size_t>(std::atoll(argv[3]));
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
  const unsigned num_devices =
      argc > 5 ? std::max(1, std::atoi(argv[5])) : 2u;
  const float eps = 0.5f;
  const int minpts = 4;

  const std::vector<Point2> points =
      kind == "uniform" ? data::generate_uniform(n, seed, 35.0f, 35.0f)
                        : data::make_dataset(kind, n);
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable oracle = build_neighbor_table_host_parallel(index, eps);
  oracle.canonicalize();

  cudasim::SimulationOptions sim;
  sim.throttle_transfers = false;
  sim.throttle_pinned_alloc = false;
  std::vector<std::unique_ptr<cudasim::Device>> devices;
  std::vector<cudasim::Device*> device_ptrs;
  for (unsigned d = 0; d < num_devices; ++d) {
    const auto plan = cudasim::FaultPlan::randomized(seed + 17 * d);
    std::printf("device %u plan: %s\n", d, plan.describe().c_str());
    cudasim::SimulationOptions opt = sim;
    opt.fault = std::make_shared<cudasim::FaultInjector>(plan);
    devices.push_back(
        std::make_unique<cudasim::Device>(cudasim::DeviceConfig{}, opt));
    device_ptrs.push_back(devices.back().get());
  }

  // Many small batches so the scripted faults land mid-build; every rung
  // of the ladder is armed, down to the host fallback.
  BatchPolicy policy;
  policy.estimated_total_override = std::max<std::uint64_t>(
      1, oracle.total_pairs());
  policy.static_threshold_pairs = 1;
  policy.static_buffer_pairs =
      std::max<std::uint64_t>(1, oracle.total_pairs() / 24);
  policy.resilience.host_fallback = true;

  NeighborTableBuilder builder(device_ptrs, policy);
  BuildReport report;
  NeighborTable table = builder.build(index, eps, &report);
  std::printf(
      "build survived: %u batches, %llu pairs | retries: %u transient,"
      " %u alloc | %u devices lost, %u batches failed over, %u finished"
      " on host%s\n",
      report.batches_run,
      static_cast<unsigned long long>(report.total_pairs),
      report.transient_retries, report.alloc_retries, report.devices_lost,
      report.failover_batches, report.host_fallback_batches,
      report.used_host_fallback ? " (host fallback)" : "");

  int violations = 0;
  table.canonicalize();
  if (!table.identical_to(oracle)) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATED: degraded table differs from the host"
                 " oracle (%zu vs %zu pairs)\n",
                 table.total_pairs(), oracle.total_pairs());
    ++violations;
  }
  for (unsigned d = 0; d < num_devices; ++d) {
    if (devices[d]->used_global_bytes() != 0) {
      std::fprintf(stderr,
                   "INVARIANT VIOLATED: device %u leaks %zu bytes after the"
                   " build\n",
                   d, devices[d]->used_global_bytes());
      ++violations;
    }
  }
  const ClusterResult got = dbscan_neighbor_table(table, minpts);
  const ClusterResult want = dbscan_neighbor_table(oracle, minpts);
  if (got.num_clusters != want.num_clusters ||
      got.noise_count() != want.noise_count()) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATED: clustering differs (%d/%zu vs"
                 " %d/%zu clusters/noise)\n",
                 got.num_clusters, got.noise_count(), want.num_clusters,
                 want.noise_count());
    ++violations;
  }
  if (violations != 0) return 1;
  std::printf("chaos: all invariants held (%zu points, %u devices,"
              " seed %llu)\n",
              points.size(), num_devices,
              static_cast<unsigned long long>(seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "cluster") return cmd_cluster(argc, argv);
    if (cmd == "sweep") return cmd_sweep(argc, argv);
    if (cmd == "reuse") return cmd_reuse(argc, argv);
    if (cmd == "table") return cmd_table(argc, argv);
    if (cmd == "optics") return cmd_optics(argc, argv);
    if (cmd == "chaos") return cmd_chaos(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
